"""Tests for dependence extraction, the inequality solver and unimodular
completion (paper section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paper import gauss_seidel_analyzed
from repro.errors import InfeasibleScheduleError, TransformError
from repro.graph.build import build_dependency_graph
from repro.hyperplane.dependences import extract_dependences, find_recursive_components
from repro.hyperplane.solver import format_inequalities, solve_time_vector
from repro.hyperplane.unimodular import (
    complete_to_unimodular,
    determinant,
    integer_inverse,
    matvec,
)


@pytest.fixture(scope="module")
def gs_deps():
    analyzed = gauss_seidel_analyzed()
    graph = build_dependency_graph(analyzed)
    comps = find_recursive_components(graph)
    assert len(comps) == 1
    return extract_dependences(graph, comps[0])


class TestDependenceExtraction:
    def test_dimension_names(self, gs_deps):
        assert gs_deps.dim_names == ["K", "I", "J"]

    def test_dependence_vectors(self, gs_deps):
        # The paper's five dependences: A[K-1,I,J], A[K,I,J-1], A[K,I-1,J],
        # A[K-1,I,J+1], A[K-1,I+1,J].
        assert set(gs_deps.vectors) == {
            (1, 0, 0),
            (0, 0, 1),
            (0, 1, 0),
            (1, 0, -1),
            (1, -1, 0),
        }

    def test_raw_deltas_count(self, gs_deps):
        assert len(gs_deps.deltas) == 5


class TestInequalities:
    def test_paper_inequalities(self, gs_deps):
        """Section 4: a > 0, c > 0, b > 0, a > c, a > b."""
        rendered = set(format_inequalities(gs_deps.vectors))
        assert rendered == {"a > 0", "c > 0", "b > 0", "a > c", "a > b"}

    def test_coefficient_names_customisable(self):
        out = format_inequalities([(2, -1)], ["x", "y"])
        assert out == ["2x > y"]


class TestSolver:
    def test_paper_solution(self, gs_deps):
        """'In this case, we get a = 2 and b = c = 1.'"""
        assert solve_time_vector(gs_deps.vectors) == (2, 1, 1)

    def test_jacobi_solution_trivial(self):
        # Jacobi only depends on the previous iteration: pi = (1, 0, 0).
        assert solve_time_vector([(1, 0, 0), (1, 1, 0), (1, -1, 0), (1, 0, 1), (1, 0, -1)]) == (
            1,
            0,
            0,
        )

    def test_wavefront_solution(self):
        # W[I,J] = W[I-1,J] + W[I,J-1]: t = I + J.
        assert solve_time_vector([(1, 0), (0, 1)]) == (1, 1)

    def test_single_dimension(self):
        assert solve_time_vector([(1,)]) == (1,)
        assert solve_time_vector([(2,)]) == (1,)

    def test_negative_coefficient_needed(self):
        # Only dependence (1, -1): pi = (1, 0) suffices (minimal norm).
        assert solve_time_vector([(1, -1)]) == (1, 0)

    def test_skewed_dependence(self):
        # (-1, 2) and (1, 0): need a + 2b >= 1 with -a + 2b >= 1.
        pi = solve_time_vector([(-1, 2), (1, 0)])
        assert all(sum(p * d for p, d in zip(pi, v)) >= 1 for v in [(-1, 2), (1, 0)])

    def test_infeasible_antiparallel(self):
        with pytest.raises(InfeasibleScheduleError):
            solve_time_vector([(1, 0), (-1, 0)])

    def test_infeasible_zero_vector_only(self):
        with pytest.raises(InfeasibleScheduleError):
            solve_time_vector([(0, 0)])

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-3, max_value=3),
                st.integers(min_value=-3, max_value=3),
                st.integers(min_value=-3, max_value=3),
            ).filter(lambda v: v != (0, 0, 0)),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_solution_satisfies_all_inequalities(self, vectors):
        try:
            pi = solve_time_vector(vectors)
        except InfeasibleScheduleError:
            return
        for v in vectors:
            assert sum(p * d for p, d in zip(pi, v)) >= 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=-2, max_value=2),
            ).filter(lambda v: v > (0, -3) and v != (0, 0)),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_minimality(self, vectors):
        """No vector of smaller L1 norm satisfies the system."""
        try:
            pi = solve_time_vector(vectors)
        except InfeasibleScheduleError:
            return
        norm = sum(abs(p) for p in pi)
        for a in range(-norm + 1, norm):
            for b in range(-norm + 1, norm):
                if abs(a) + abs(b) >= norm:
                    continue
                assert not all(a * v[0] + b * v[1] >= 1 for v in vectors)


class TestUnimodular:
    def test_paper_completion(self):
        """pi = (2,1,1) completes to K' = 2K+I+J, I' = K, J' = I."""
        T = complete_to_unimodular((2, 1, 1))
        assert T == [[2, 1, 1], [1, 0, 0], [0, 1, 0]]
        assert determinant(T) in (1, -1)

    def test_paper_inverse(self):
        """K = I', I = J', J = K' - 2I' - J'."""
        T = complete_to_unimodular((2, 1, 1))
        Tinv = integer_inverse(T)
        assert Tinv == [[0, 1, 0], [0, 0, 1], [1, -2, -1]]

    def test_round_trip(self):
        T = complete_to_unimodular((2, 1, 1))
        Tinv = integer_inverse(T)
        for v in [(1, 0, 0), (2, 3, 4), (-1, 5, -2)]:
            assert matvec(Tinv, matvec(T, v)) == v

    def test_wavefront_completion(self):
        T = complete_to_unimodular((1, 1))
        assert T[0] == [1, 1]
        assert determinant(T) in (1, -1)

    def test_identity_time_vector(self):
        T = complete_to_unimodular((1, 0, 0))
        assert determinant(T) in (1, -1)

    def test_non_primitive_rejected(self):
        with pytest.raises(TransformError, match="primitive"):
            complete_to_unimodular((2, 2))

    def test_gcd_fallback_no_unit_coordinate(self):
        # (6, 10, 15): gcd 1 but no coordinate is ±1, so the greedy
        # basis-row completion fails and the extended-gcd path is used.
        T = complete_to_unimodular((6, 10, 15))
        assert T[0] == [6, 10, 15]
        assert determinant(T) in (1, -1)

    @given(
        st.tuples(
            st.integers(min_value=-6, max_value=6),
            st.integers(min_value=-6, max_value=6),
            st.integers(min_value=-6, max_value=6),
        ).filter(lambda v: v != (0, 0, 0))
    )
    @settings(max_examples=200, deadline=None)
    def test_completion_property(self, pi):
        from math import gcd

        g = 0
        for x in pi:
            g = gcd(g, abs(x))
        if g != 1:
            with pytest.raises(TransformError):
                complete_to_unimodular(pi)
            return
        T = complete_to_unimodular(pi)
        assert tuple(T[0]) == pi
        assert determinant(T) in (1, -1)
        Tinv = integer_inverse(T)
        for v in [(1, 2, 3), (0, 0, 1), (-4, 5, 0)]:
            assert matvec(Tinv, matvec(T, v)) == v

    def test_determinant_examples(self):
        assert determinant([[1]]) == 1
        assert determinant([[1, 2], [3, 4]]) == -2
        assert determinant([[2, 0], [0, 2]]) == 4
        assert determinant([[1, 1], [1, 1]]) == 0
