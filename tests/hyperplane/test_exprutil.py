"""Unit tests for the symbolic expression helpers used by the rewrite."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hyperplane.exprutil import (
    add,
    conjoin,
    linear_combination,
    mul,
    offset,
    sub,
    substitute,
)
from repro.ps.ast import BinOp, IntLit, Name
from repro.ps.parser import parse_expression
from repro.ps.printer import format_expression
from repro.runtime.values import eval_bound


class TestFolding:
    def test_add_constants(self):
        assert format_expression(add(IntLit(2), IntLit(3))) == "5"

    def test_add_zero(self):
        assert format_expression(add(Name("x"), IntLit(0))) == "x"
        assert format_expression(add(IntLit(0), Name("x"))) == "x"

    def test_add_negative_becomes_subtraction(self):
        assert format_expression(add(Name("x"), IntLit(-2))) == "x - 2"

    def test_sub_zero(self):
        assert format_expression(sub(Name("x"), IntLit(0))) == "x"

    def test_mul_identities(self):
        assert format_expression(mul(1, Name("x"))) == "x"
        assert format_expression(mul(0, Name("x"))) == "0"
        assert format_expression(mul(-1, Name("x"))) == "-x"
        assert format_expression(mul(3, Name("x"))) == "3 * x"

    def test_offset(self):
        assert format_expression(offset("K", 0)) == "K"
        assert format_expression(offset("K", -2)) == "K - 2"
        assert format_expression(offset("K", 1)) == "K + 1"


class TestLinearCombination:
    def test_paper_inverse_row(self):
        # J = K' - 2I' - J'
        e = linear_combination([1, -2, -1], [Name("Kp"), Name("Ip"), Name("Jp")])
        assert format_expression(e) == "Kp - 2 * Ip - Jp"

    def test_time_row(self):
        e = linear_combination([2, 1, 1], [Name("K"), Name("I"), Name("J")])
        assert format_expression(e) == "2 * K + I + J"

    def test_zero_row(self):
        e = linear_combination([0, 0], [Name("a"), Name("b")])
        assert format_expression(e) == "0"

    @given(
        st.lists(st.integers(min_value=-4, max_value=4), min_size=2, max_size=4),
        st.lists(st.integers(min_value=-9, max_value=9), min_size=2, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_evaluates_correctly(self, coeffs, values):
        n = min(len(coeffs), len(values))
        coeffs, values = coeffs[:n], values[:n]
        names = [f"v{i}" for i in range(n)]
        e = linear_combination(coeffs, [Name(nm) for nm in names], constant=7)
        env = dict(zip(names, values))
        expected = sum(c * v for c, v in zip(coeffs, values)) + 7
        assert eval_bound(e, env) == expected


class TestSubstitute:
    def test_name_replacement(self):
        e = parse_expression("I + J * 2")
        out = substitute(e, {"I": parse_expression("Jp"), "J": parse_expression("Kp - 1")})
        assert format_expression(out) == "Jp + (Kp - 1) * 2"

    def test_array_base_untouched(self):
        e = parse_expression("A[I - 1]")
        out = substitute(e, {"I": parse_expression("t"), "A": parse_expression("WRONG")})
        assert format_expression(out) == "A[t - 1]"

    def test_if_and_calls(self):
        e = parse_expression("if I = 0 then min(I, 1) else -I")
        out = substitute(e, {"I": parse_expression("x + 1")})
        assert format_expression(out) == "if x + 1 = 0 then min(x + 1, 1) else -(x + 1)"


class TestConjoin:
    def test_empty(self):
        assert conjoin([]) is None

    def test_single(self):
        c = parse_expression("a = 0")
        assert conjoin([c]) is c

    def test_multiple(self):
        cs = [parse_expression("a = 0"), parse_expression("b = 1"), parse_expression("c = 2")]
        out = conjoin(cs)
        assert isinstance(out, BinOp) and out.op == "and"
        assert format_expression(out) == "a = 0 and b = 1 and c = 2"
