"""End-to-end C validation: the generated C is compiled with gcc, executed,
and compared against the interpreter.

A small driver is generated mechanically from the module signature: array
parameters are filled by a deterministic LCG reproduced identically on the
Python side, the module function is called, and the result array is printed
at full precision.
"""

import shutil
import subprocess

import numpy as np
import pytest

from repro.codegen.cgen import generate_c
from repro.codegen.naming import c_name
from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.types import ArrayType
from repro.runtime.executor import execute_module
from repro.runtime.values import array_bounds

gcc = shutil.which("gcc")
pytestmark = pytest.mark.skipif(gcc is None, reason="gcc not available")

_LCG_A, _LCG_C, _LCG_M = 1103515245, 12345, 2**31


def _lcg_fill(n: int, seed: int = 1) -> np.ndarray:
    out = np.empty(n)
    x = seed
    for i in range(n):
        x = (x * _LCG_A + _LCG_C) % _LCG_M
        out[i] = x / _LCG_M
    return out


def _make_driver(analyzed, scalar_values: dict[str, int]) -> str:
    """C main(): allocate+fill array params with the LCG, call the module,
    print the (single, array) result row by row."""
    mod = analyzed.module
    lines = [
        "#include <stdio.h>",
        "#include <stdlib.h>",
        "static unsigned long lcg_state = 1;",
        "static double lcg(void) {",
        f"    lcg_state = (lcg_state * {_LCG_A}UL + {_LCG_C}UL) % {_LCG_M}UL;",
        f"    return (double)lcg_state / {_LCG_M}.0;",
        "}",
        "int main(void) {",
    ]
    call_args = []
    for p in mod.params:
        sym = analyzed.symbol(p.name)
        if isinstance(sym.type, ArrayType):
            bounds = array_bounds(sym.type, scalar_values)
            total = 1
            for lo, hi in bounds:
                total *= hi - lo + 1
            lines += [
                f"    double *{c_name(p.name)} = malloc(sizeof(double) * {total});",
                f"    for (long i = 0; i < {total}; i++) {c_name(p.name)}[i] = lcg();",
            ]
            call_args.append(c_name(p.name))
        else:
            lines.append(f"    long {c_name(p.name)} = {scalar_values[p.name]};")
            call_args.append(c_name(p.name))
    (result,) = mod.results
    rsym = analyzed.symbol(result.name)
    assert isinstance(rsym.type, ArrayType)
    rbounds = array_bounds(rsym.type, scalar_values)
    rtotal = 1
    for lo, hi in rbounds:
        rtotal *= hi - lo + 1
    lines.append(f"    double *{c_name(result.name)} = malloc(sizeof(double) * {rtotal});")
    call_args.append(c_name(result.name))
    lines += [
        f"    {c_name(mod.name)}({', '.join(call_args)});",
        f"    for (long i = 0; i < {rtotal}; i++) printf(\"%.17g\\n\", {c_name(result.name)}[i]);",
        "    return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def _compile_and_run(analyzed, scalar_values, tmp_path, use_windows=True):
    c_src = generate_c(analyzed, use_windows=use_windows, emit_openmp=False)
    driver = _make_driver(analyzed, scalar_values)
    src_path = tmp_path / "module.c"
    src_path.write_text(c_src + "\n" + driver)
    exe = tmp_path / "module"
    subprocess.run(
        [gcc, "-O1", "-o", str(exe), str(src_path), "-lm"],
        check=True,
        capture_output=True,
        text=True,
    )
    proc = subprocess.run([str(exe)], check=True, capture_output=True, text=True)
    values = np.array([float(line) for line in proc.stdout.split()])
    return values


def _interpreter_reference(analyzed, scalar_values):
    args = dict(scalar_values)
    for pname in analyzed.param_names:
        sym = analyzed.symbol(pname)
        if isinstance(sym.type, ArrayType):
            bounds = array_bounds(sym.type, scalar_values)
            shape = tuple(hi - lo + 1 for lo, hi in bounds)
            args[pname] = _lcg_fill(int(np.prod(shape))).reshape(shape)
    (result_name,) = analyzed.result_names
    return execute_module(analyzed, args)[result_name].reshape(-1)


class TestCompiledC:
    @pytest.mark.parametrize("use_windows", [True, False])
    def test_jacobi_c_matches_interpreter(self, tmp_path, use_windows):
        analyzed = jacobi_analyzed()
        scalars = {"M": 6, "maxK": 5}
        got = _compile_and_run(analyzed, scalars, tmp_path, use_windows)
        expected = _interpreter_reference(analyzed, scalars)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_gauss_seidel_c_matches_interpreter(self, tmp_path):
        analyzed = gauss_seidel_analyzed()
        scalars = {"M": 5, "maxK": 4}
        got = _compile_and_run(analyzed, scalars, tmp_path)
        expected = _interpreter_reference(analyzed, scalars)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_transformed_c_matches_original(self, tmp_path):
        """The compiled C of the hyperplane-transformed module reproduces
        the *original* module's result — the full section-4 loop closed in
        another language."""
        res = hyperplane_transform(gauss_seidel_analyzed())
        scalars = {"M": 4, "maxK": 4}
        got = _compile_and_run(res.transformed, scalars, tmp_path)
        expected = _interpreter_reference(res.original, scalars)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_floored_div_mod_matches_interpreter(self, tmp_path):
        """PS ``div``/``mod`` are floored (the evaluator follows Python);
        the generator used to emit C's truncating ``/``/``%``, which
        disagree on negative operands — regression for the shared-prelude
        fix."""
        from repro.ps.parser import parse_module
        from repro.ps.semantics import analyze_module

        src = (
            "T: module (A: array[1 .. n] of real; n: int):"
            " [B: array[1 .. n] of real];\n"
            "type I = 1 .. n;\n"
            "define B[I] = ((I - 5) div 3) * 100 + (I - 5) mod 3 + 0.0 * A[I];\n"
            "end T;"
        )
        analyzed = analyze_module(parse_module(src))
        scalars = {"n": 9}
        got = _compile_and_run(analyzed, scalars, tmp_path)
        expected = _interpreter_reference(analyzed, scalars)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_openmp_pragma_compiles(self, tmp_path):
        """With -fopenmp the concurrent annotations become real threads."""
        analyzed = jacobi_analyzed()
        scalars = {"M": 6, "maxK": 5}
        c_src = generate_c(analyzed, use_windows=True, emit_openmp=True)
        driver = _make_driver(analyzed, scalars)
        src_path = tmp_path / "module.c"
        src_path.write_text(c_src + "\n" + driver)
        exe = tmp_path / "module"
        try:
            subprocess.run(
                [gcc, "-O1", "-fopenmp", "-o", str(exe), str(src_path), "-lm"],
                check=True,
                capture_output=True,
                text=True,
            )
        except subprocess.CalledProcessError:
            pytest.skip("gcc lacks OpenMP support")
        proc = subprocess.run([str(exe)], check=True, capture_output=True, text=True)
        got = np.array([float(line) for line in proc.stdout.split()])
        expected = _interpreter_reference(analyzed, scalars)
        np.testing.assert_allclose(got, expected, rtol=1e-12)
