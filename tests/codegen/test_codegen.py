"""Code-generation tests: annotated C text and executable Python."""

import numpy as np
import pytest

from repro.codegen.cgen import generate_c
from repro.codegen.pygen import compile_python, generate_python
from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.errors import CodegenError
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import execute_module


class TestCText:
    @pytest.fixture(scope="class")
    def c_src(self):
        return generate_c(jacobi_analyzed())

    def test_signature(self, c_src):
        assert "void Relaxation(" in c_src
        assert "const double *InitialA" in c_src
        assert "double *newA" in c_src

    def test_loop_annotations(self, c_src):
        """The paper: 'Each loop is annotated to indicate whether it is an
        iterative or concurrent for.'"""
        assert "/* concurrent for */" in c_src
        assert "/* iterative for */" in c_src
        assert c_src.count("/* concurrent for */") == 6  # I,J x 3 nests
        assert c_src.count("/* iterative for */") == 1  # the K loop

    def test_openmp_pragmas(self, c_src):
        assert "#pragma omp parallel for" in c_src

    def test_window_allocation(self, c_src):
        """'allocate only two instances rather than maxK instances'."""
        assert "window of 2" in c_src
        assert "malloc(sizeof(double) * 2 " in c_src

    def test_modular_window_indexing(self, c_src):
        assert "% 2" in c_src

    def test_no_window_when_disabled(self):
        c_src = generate_c(jacobi_analyzed(), use_windows=False)
        assert "window of 2" not in c_src
        assert "% 2" not in c_src

    def test_gauss_seidel_all_iterative(self):
        c_src = generate_c(gauss_seidel_analyzed())
        # eq.3 nest is a fully iterative K,I,J nest.
        assert c_src.count("/* iterative for */") == 3

    def test_transformed_module_c(self):
        res = hyperplane_transform(gauss_seidel_analyzed())
        c_src = generate_c(res.transformed)
        assert "Kp" in c_src and "Ap" in c_src
        assert c_src.count("/* iterative for */") == 1

    def test_if_becomes_ternary(self, c_src):
        assert "?" in c_src and ":" in c_src

    def test_division_is_floating(self, c_src):
        assert "(double)" in c_src


class TestPythonGeneration:
    def test_source_annotations(self):
        src = generate_python(jacobi_analyzed())
        assert "# DOALL (concurrent)" in src
        assert "# DO (iterative)" in src
        assert "window allocation" in src

    @pytest.mark.parametrize("use_windows", [True, False])
    def test_jacobi_generated_matches_interpreter(self, use_windows):
        analyzed = jacobi_analyzed()
        fn = compile_python(analyzed, use_windows=use_windows)
        rng = np.random.default_rng(1)
        m, maxk = 5, 4
        initial = rng.random((m + 2, m + 2))
        expected = execute_module(
            analyzed, {"InitialA": initial, "M": m, "maxK": maxk}
        )["newA"]
        got = fn(initial, m, maxk)
        np.testing.assert_allclose(got, expected)

    @pytest.mark.parametrize("use_windows", [True, False])
    def test_gauss_seidel_generated_matches_interpreter(self, use_windows):
        analyzed = gauss_seidel_analyzed()
        fn = compile_python(analyzed, use_windows=use_windows)
        rng = np.random.default_rng(2)
        m, maxk = 4, 5
        initial = rng.random((m + 2, m + 2))
        expected = execute_module(
            analyzed, {"InitialA": initial, "M": m, "maxK": maxk}
        )["newA"]
        got = fn(initial, m, maxk)
        np.testing.assert_allclose(got, expected)

    def test_transformed_generated_matches_original(self):
        res = hyperplane_transform(gauss_seidel_analyzed())
        fn = compile_python(res.transformed)
        rng = np.random.default_rng(3)
        m, maxk = 4, 4
        initial = rng.random((m + 2, m + 2))
        expected = execute_module(
            res.original, {"InitialA": initial, "M": m, "maxK": maxk}
        )["newA"]
        got = fn(initial, m, maxk)
        np.testing.assert_allclose(got, expected)

    def test_scalar_module(self):
        analyzed = analyze_module(
            parse_module(
                "T: module (x: int): [y: int];\n"
                "var a: int;\n"
                "define a = x * 3; y = a + 1;\nend T;"
            )
        )
        fn = compile_python(analyzed)
        assert fn(5) == 16

    def test_multiple_results(self):
        analyzed = analyze_module(
            parse_module(
                "T: module (x: int): [q: int; r: int];\n"
                "define q = x div 3; r = x mod 3;\nend T;"
            )
        )
        fn = compile_python(analyzed)
        assert fn(17) == (5, 2)

    def test_builtins(self):
        analyzed = analyze_module(
            parse_module(
                "T: module (x: real): [y: real];\n"
                "define y = sqrt(abs(x)) + max(x, 0.0);\nend T;"
            )
        )
        fn = compile_python(analyzed)
        assert fn(4.0) == pytest.approx(6.0)

    def test_fibonacci_with_window(self):
        analyzed = analyze_module(
            parse_module(
                "T: module (n: int): [y: int];\n"
                "type I = 3 .. n;\n"
                "var F: array [1 .. n] of int;\n"
                "define F[1] = 1; F[2] = 1; F[I] = F[I-1] + F[I-2]; y = F[n];\nend T;"
            )
        )
        fn = compile_python(analyzed, use_windows=True)
        assert fn(20) == 6765
        src = generate_python(analyzed, use_windows=True)
        assert "% 3" in src  # window of 3 planes

    def test_module_call_rejected(self):
        from repro.ps.parser import parse_program
        from repro.ps.semantics import analyze_program

        program = analyze_program(
            parse_program(
                "Inc: module (x: int): [y: int]; define y = x + 1; end Inc;\n"
                "Use: module (x: int): [y: int]; define y = Inc(x); end Use;"
            )
        )
        with pytest.raises(CodegenError, match="module call"):
            generate_python(program["Use"])
