"""Schedule-validation tests: the scheduler's DO/DOALL decisions never
allow a read-before-write, and sabotaged schedules are caught."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.validate import validate_flowchart_order
from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.schedule.flowchart import Flowchart, LoopDescriptor
from repro.schedule.scheduler import schedule_module


class TestValidSchedules:
    def test_jacobi_schedule_valid(self):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        assert validate_flowchart_order(analyzed, flow, {"M": 4, "maxK": 4}) == []

    def test_gauss_seidel_schedule_valid(self):
        analyzed = gauss_seidel_analyzed()
        flow = schedule_module(analyzed)
        assert validate_flowchart_order(analyzed, flow, {"M": 4, "maxK": 4}) == []

    def test_transformed_schedule_valid(self):
        res = hyperplane_transform(gauss_seidel_analyzed())
        flow = res.transformed_flowchart
        assert validate_flowchart_order(res.transformed, flow, {"M": 3, "maxK": 4}) == []

    def test_wavefront_schedule_valid(self):
        analyzed = analyze_module(
            parse_module(
                "T: module (n: int): [y: real];\n"
                "type I = 1 .. n; J = 1 .. n;\n"
                "var W: array [0 .. n, 0 .. n] of real;\n"
                "define W[0] = 1.0; W[I, 0] = 1.0;\n"
                "W[I, J] = W[I-1, J] + W[I, J-1];\n"
                "y = W[n, n];\nend T;"
            )
        )
        flow = schedule_module(analyzed)
        assert validate_flowchart_order(analyzed, flow, {"n": 5}) == []


def _force_parallel(flow: Flowchart) -> Flowchart:
    """Sabotage: flip every DO to DOALL."""

    def flip(d):
        if isinstance(d, LoopDescriptor):
            return LoopDescriptor(
                d.subrange, d.index, True, [flip(x) for x in d.body], dict(d.windows)
            )
        return d

    return Flowchart([flip(d) for d in flow.descriptors], dict(flow.windows))


class TestSabotagedSchedules:
    def test_parallelised_gauss_seidel_detected(self):
        """Making the Gauss-Seidel K/I/J loops DOALL is exactly the bug the
        scheduler exists to prevent; the validator must catch it."""
        analyzed = gauss_seidel_analyzed()
        flow = _force_parallel(schedule_module(analyzed))
        violations = validate_flowchart_order(analyzed, flow, {"M": 3, "maxK": 3})
        assert violations
        assert any(v.array == "A" for v in violations)

    def test_parallelised_recurrence_detected(self):
        analyzed = analyze_module(
            parse_module(
                "T: module (n: int; x0: real): [y: real];\n"
                "type I = 2 .. n;\n"
                "var F: array [1 .. n] of real;\n"
                "define F[1] = x0; F[I] = F[I-1] * 0.5; y = F[n];\nend T;"
            )
        )
        flow = _force_parallel(schedule_module(analyzed))
        assert validate_flowchart_order(analyzed, flow, {"n": 6, "x0": 1.0})

    def test_reordered_equations_detected(self):
        """Running the K-recurrence before the initialisation plane reads
        unwritten elements."""
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        descs = list(flow.descriptors)
        # Schedule order is [eq.1 nest, eq.3 nest, eq.2 nest]; swap 0 and 1.
        bad = Flowchart([descs[1], descs[0], descs[2]], dict(flow.windows))
        violations = validate_flowchart_order(analyzed, bad, {"M": 3, "maxK": 3})
        assert any(v.write_time is None for v in violations)


@st.composite
def random_stencil_module(draw):
    """A 2-D recurrence with a random constant-offset stencil drawn from
    strictly 'past' neighbours (lexicographically positive dependences), so
    the module is always schedulable; the property is that the scheduler's
    flowchart is always valid."""
    offsets = draw(
        st.lists(
            st.sampled_from(
                [(-1, 0), (0, -1), (-1, -1), (-1, 1), (-2, 0), (0, -2), (-1, 2)]
            ),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    terms = " + ".join(
        f"G[R{di:+d}, C{dj:+d}]".replace("+0", "").replace("-0", "")
        for di, dj in offsets
    )
    # Guard: interior needs both neighbours in range; pad borders with 1.0.
    max_back_r = max(-di for di, _ in offsets)
    max_back_c = max(abs(dj) for _, dj in offsets)
    src = (
        "T: module (n: int): [y: real];\n"
        f"type R = 0 .. n; C = 0 .. n;\n"
        "var G: array [0 .. n, 0 .. n] of real;\n"
        "define\n"
        f"G[R, C] = if (R < {max_back_r}) or (C < {max_back_c}) "
        f"or (C > n - {max_back_c}) then 1.0 else ({terms}) / {len(offsets)};\n"
        "y = G[n, n];\nend T;"
    )
    return src


class TestPropertySchedulesAlwaysValid:
    @given(random_stencil_module())
    @settings(max_examples=40, deadline=None)
    def test_scheduler_output_is_always_valid(self, src):
        from repro.errors import ScheduleError

        analyzed = analyze_module(parse_module(src))
        try:
            flow = schedule_module(analyzed)
        except ScheduleError:
            return  # refusing to schedule is always sound
        assert validate_flowchart_order(analyzed, flow, {"n": 6}) == []
