"""Tests for element-level analyses: levels, wavefronts, coverage."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.element_graph import build_element_graph
from repro.analysis.wavefront import wavefront_profile


class TestWavefrontProfile:
    def test_paper_hyperplane_range(self):
        """t = 2K + I + J over K in 1..maxK, I,J in 0..M+1: t runs from 2
        to 2*maxK + 2(M+1) — "t = 1 ... 2 x maxK + 2 x M" up to the paper's
        loose bound rendering."""
        m, maxk = 8, 10
        prof = wavefront_profile((2, 1, 1), [(1, maxk), (0, m + 1), (0, m + 1)])
        assert prof.t_min == 2
        assert prof.t_max == 2 * maxk + 2 * (m + 1)

    def test_covers_every_point_exactly_once(self):
        prof = wavefront_profile((2, 1, 1), [(1, 5), (0, 6), (0, 6)])
        assert prof.covers_box_exactly()

    def test_2d_antidiagonal_profile(self):
        prof = wavefront_profile((1, 1), [(0, 3), (0, 3)])
        # Sizes 1,2,3,4,3,2,1 — the classic anti-diagonal ramp.
        assert prof.sizes == [1, 2, 3, 4, 3, 2, 1]
        assert prof.max_width == 4

    def test_identity_time_vector_planes(self):
        prof = wavefront_profile((1, 0, 0), [(1, 4), (0, 2), (0, 2)])
        assert prof.n_hyperplanes == 4
        assert all(s == 9 for s in prof.sizes)

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=3),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_coverage_property(self, pi, extent):
        if all(p == 0 for p in pi):
            pi[0] = 1
        bounds = [(0, extent)] * len(pi)
        prof = wavefront_profile(tuple(pi), bounds)
        assert prof.covers_box_exactly()

    def test_brute_force_agreement(self):
        import itertools

        pi = (2, 1, 1)
        bounds = [(1, 4), (0, 3), (0, 3)]
        prof = wavefront_profile(pi, bounds)
        counts: dict[int, int] = {}
        for x in itertools.product(*[range(lo, hi + 1) for lo, hi in bounds]):
            t = sum(p * xi for p, xi in zip(pi, x))
            counts[t] = counts.get(t, 0) + 1
        assert prof.sizes == [
            counts.get(t, 0) for t in range(prof.t_min, prof.t_max + 1)
        ]


class TestElementGraph:
    def test_jacobi_levels_are_k_planes(self):
        # Dependences all carry K-distance 1: level = K - K_lo.
        g = build_element_graph(
            [(1, 4), (0, 5), (0, 5)],
            [(1, 0, 0), (1, 1, 0), (1, -1, 0), (1, 0, 1), (1, 0, -1)],
        )
        assert g.span == 4
        assert g.level_sizes() == [36, 36, 36, 36]

    def test_gauss_seidel_span_shorter_than_sequential(self):
        """The hyperplane exposes parallelism: span << number of elements."""
        g = build_element_graph(
            [(1, 6), (0, 7), (0, 7)],
            [(1, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, -1), (1, -1, 0)],
        )
        assert g.span < g.work
        assert g.max_parallelism() > 1

    def test_wavefront_2d_levels(self):
        g = build_element_graph([(0, 3), (0, 3)], [(1, 0), (0, 1)])
        # level(x, y) = x + y
        expected = np.add.outer(np.arange(4), np.arange(4))
        np.testing.assert_array_equal(g.levels, expected)

    def test_chain_is_fully_sequential(self):
        g = build_element_graph([(0, 9)], [(1,)])
        assert g.span == 10
        assert g.max_parallelism() == 1

    def test_level_of_element_never_below_hyperplane_lower_bound(self):
        """pi . x is a valid linear schedule, so the true level (longest
        path) can never exceed the hyperplane index: level(x) <= pi.x -
        t_min for every x. (The hyperplane schedule is conservative; the DP
        computes the exact minimum.)"""
        vectors = [(1, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, -1), (1, -1, 0)]
        bounds = [(1, 5), (0, 5), (0, 5)]
        g = build_element_graph(bounds, vectors)
        pi = (2, 1, 1)
        t_min = 2 * 1 + 0 + 0
        import itertools

        for x in itertools.product(*[range(lo, hi + 1) for lo, hi in bounds]):
            idx = tuple(xi - lo for xi, (lo, _) in zip(x, bounds))
            t = sum(p * xi for p, xi in zip(pi, x))
            assert g.levels[idx] <= t - t_min

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=-2, max_value=2),
            ).filter(lambda v: v != (0, 0) and (v[0] > 0 or (v[0] == 0 and v[1] > 0))),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_levels_respect_dependences(self, vectors):
        bounds = [(0, 5), (0, 5)]
        g = build_element_graph(bounds, vectors)
        import itertools

        for x in itertools.product(range(6), range(6)):
            for d in vectors:
                y = (x[0] - d[0], x[1] - d[1])
                if 0 <= y[0] <= 5 and 0 <= y[1] <= 5:
                    assert g.levels[x] > g.levels[y]
