"""One integration test per claim, in the order the paper makes them — a
readable replay of the whole narrative."""

import numpy as np
import pytest

from repro.core.paper import (
    RELAXATION_GAUSS_SEIDEL_SOURCE,
    RELAXATION_JACOBI_SOURCE,
    gauss_seidel_analyzed,
    jacobi_analyzed,
)
from repro.graph.build import build_dependency_graph, bound_adjacency, data_adjacency
from repro.graph.scc import condensation_order
from repro.hyperplane.pipeline import hyperplane_transform
from repro.runtime.executor import execute_module
from repro.runtime.wavefront import execute_transformed_windowed
from repro.schedule.scheduler import schedule_module


class TestSection2Language:
    def test_equations_may_be_entered_in_any_order(self):
        """'The equations may be entered in any order.'"""
        from repro.ps.parser import parse_module
        from repro.ps.semantics import analyze_module

        reordered = RELAXATION_JACOBI_SOURCE.replace(
            "(* eq.1 *) A[1] = InitialA;          (* the first grid is input *)\n",
            "",
        ).replace(
            "end Relaxation;",
            "",
        ) + "A[1] = InitialA;\nend Relaxation;"
        flow = schedule_module(analyze_module(parse_module(reordered)))
        # The init equation still executes first regardless of source order.
        labels = flow.equation_labels()
        init_label = labels[0]
        assert init_label == flow.equation_labels()[0]
        rng = np.random.default_rng(0)
        m, maxk = 4, 3
        initial = rng.random((m + 2, m + 2))
        out1 = execute_module(
            analyze_module(parse_module(reordered)),
            {"InitialA": initial, "M": m, "maxK": maxk},
        )
        out2 = execute_module(
            jacobi_analyzed(), {"InitialA": initial, "M": m, "maxK": maxk}
        )
        np.testing.assert_allclose(out1["newA"], out2["newA"])


class TestSection3Scheduling:
    def test_dependency_graph_matches_figure3(self):
        g = build_dependency_graph(jacobi_analyzed())
        data = data_adjacency(g)
        bound = bound_adjacency(g)
        assert data["A"] == {"eq.2", "eq.3"}
        assert {"InitialA", "A", "newA"} <= bound["M"]

    def test_seven_components(self):
        g = build_dependency_graph(jacobi_analyzed())
        assert len(condensation_order(g.full_view())) == 7

    def test_figure6_schedule(self):
        flow = schedule_module(jacobi_analyzed())
        assert flow.shape() == [
            ("DOALL", "I", [("DOALL", "J", ["eq.1"])]),
            ("DO", "K", [("DOALL", "I", [("DOALL", "J", ["eq.3"])])]),
            ("DOALL", "I", [("DOALL", "J", ["eq.2"])]),
        ]

    def test_section34_window_two(self):
        flow = schedule_module(jacobi_analyzed())
        assert flow.window_of("A") == {0: 2}


class TestSection4Restructuring:
    @pytest.fixture(scope="class")
    def res(self):
        return hyperplane_transform(gauss_seidel_analyzed())

    def test_figure7_iterative_nest(self, res):
        assert res.original_flowchart.shape()[1] == (
            "DO",
            "K",
            [("DO", "I", [("DO", "J", ["eq.3"])])],
        )

    def test_five_inequalities(self, res):
        assert len(res.inequalities) == 5

    def test_least_integers(self, res):
        assert res.pi == (2, 1, 1)

    def test_hyperplane_equation_quote(self, res):
        """'All array elements A[K,I,J] such that 2K + I + J = t will be
        defined at time t.'"""
        assert res.time_equation.endswith("2K + I + J")

    def test_schedule_identical_to_figure6(self, res):
        trans = res.transformed_flowchart.shape()
        nest = [s for s in trans if isinstance(s, tuple) and s[0] == "DO"][0]
        # DO time (DOALL (DOALL (eq)))
        assert nest[2][0][0] == "DOALL"
        assert nest[2][0][2][0][0] == "DOALL"

    def test_window_three_and_storage(self, res):
        assert res.recurrence_window == 3
        comp = res.storage_comparison({"M": 10, "maxK": 10})
        assert comp["transformed_window"] == 3 * 10 * 12
        assert comp["untransformed_window"] == 2 * 12 * 12

    def test_full_circle_numeric(self, res):
        """Original iterative, transformed full, and transformed windowed
        wavefront all compute the same grid."""
        rng = np.random.default_rng(99)
        m, maxk = 5, 6
        args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
        a = execute_module(res.original, args)["newA"]
        b = execute_module(res.transformed, args)["newA"]
        c = execute_transformed_windowed(res, args).results["newA"]
        np.testing.assert_allclose(b, a, rtol=1e-12)
        np.testing.assert_allclose(c, a, rtol=1e-12)


class TestConclusionClaims:
    def test_storage_reuse_detected_by_scheduler(self):
        """'opportunities for storage reuse are detected by the scheduler'"""
        for analyzed in (jacobi_analyzed(), gauss_seidel_analyzed()):
            assert schedule_module(analyzed).window_of("A") == {0: 2}

    def test_iterative_formulation_transformed_to_parallel(self):
        """'an apparently iterative formulation can be transformed into a
        parallel one from which a parallel loop can be generated'"""
        res = hyperplane_transform(gauss_seidel_analyzed())
        before = [k for k, _ in res.original_flowchart.loop_kinds()]
        after = [k for k, _ in res.transformed_flowchart.loop_kinds()]
        assert before.count("DO") == 3
        assert after.count("DO") == 1

    def test_storage_reuse_applies_to_transformed_array(self):
        """'storage reuse can be applied to the transformed array'"""
        res = hyperplane_transform(gauss_seidel_analyzed())
        m, maxk = 4, 5
        args = {"InitialA": np.ones((m + 2, m + 2)), "M": m, "maxK": maxk}
        report = execute_transformed_windowed(res, args)
        assert report.window == 3
        assert report.allocated_elements[res.new_array] < maxk * (m + 2) ** 2
