"""Robustness tests: every stage fails loudly and specifically on bad
input, never silently producing a wrong artifact."""

import numpy as np
import pytest

from repro.errors import (
    CodegenError,
    ExecutionError,
    InfeasibleScheduleError,
    ParseError,
    ScheduleError,
    SemanticError,
    TransformError,
)
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import execute_module
from repro.schedule.scheduler import schedule_module


def analyze(src):
    return analyze_module(parse_module(src))


class TestFrontEndErrors:
    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as exc:
            parse_module("T: module (x: int): [y: int];\ndefine y = ;\nend T;")
        assert exc.value.line == 2

    def test_semantic_error_line(self):
        with pytest.raises(SemanticError) as exc:
            analyze("T: module (x: int): [y: int];\ndefine\ny = zz;\nend T;")
        assert exc.value.line == 3

    def test_unknown_type(self):
        with pytest.raises(SemanticError, match="unknown type"):
            analyze("T: module (x: Widget): [y: int];\ndefine y = 1;\nend T;")

    def test_bad_subrange_bound_type(self):
        with pytest.raises(SemanticError, match="non-integer"):
            analyze(
                "T: module (f: real): [y: real];\n"
                "type I = 0 .. f;\n"
                "var A: array[I] of real;\n"
                "define A[I] = 1.0; y = A[0];\nend T;"
            )

    def test_array_dim_must_be_subrange(self):
        with pytest.raises(SemanticError, match="subrange"):
            analyze(
                "T: module (x: int): [y: real];\n"
                "type C = (red, blue);\n"
                "var A: array[C] of real;\n"
                "define y = 1.0;\nend T;"
            )


class TestTransformErrors:
    def test_multi_array_component_rejected(self):
        src = (
            "T: module (n: int): [y: real];\n"
            "type I = 2 .. n;\n"
            "var P: array [1 .. n] of real; Q: array [1 .. n] of real;\n"
            "define P[1] = 1.0; Q[1] = 2.0;\n"
            "P[I] = Q[I-1] * 0.5; Q[I] = P[I-1] + 1.0;\n"
            "y = P[n];\nend T;"
        )
        with pytest.raises(TransformError, match="2 arrays; name one"):
            hyperplane_transform(analyze(src))
        with pytest.raises(TransformError, match="single recursive array"):
            hyperplane_transform(analyze(src), array="P")

    def test_non_uniform_subscript_rejected(self):
        src = (
            "T: module (n: int): [y: real];\n"
            "type I = 1 .. n;\n"
            "var S: array [0 .. n] of real;\n"
            "define S[0] = 1.0;\n"
            "S[I] = S[I div 2] + 1.0;\n"
            "y = S[n];\nend T;"
        )
        with pytest.raises((TransformError, ScheduleError)):
            res = hyperplane_transform(analyze(src))

    def test_infeasible_dependences(self):
        from repro.hyperplane.solver import solve_time_vector

        with pytest.raises(InfeasibleScheduleError):
            solve_time_vector([(1, 1), (-1, -1)])


class TestExecutionErrors:
    def test_wrong_array_shape(self):
        from repro.core.paper import jacobi_analyzed

        with pytest.raises(ExecutionError, match="shape"):
            execute_module(
                jacobi_analyzed(),
                {"InitialA": np.zeros((3, 3)), "M": 6, "maxK": 4},
            )

    def test_missing_scalar(self):
        from repro.core.paper import jacobi_analyzed

        with pytest.raises(ExecutionError, match="missing"):
            execute_module(jacobi_analyzed(), {"InitialA": np.zeros((8, 8)), "M": 6})

    def test_empty_subrange_executes_empty(self):
        # maxK = 1 means the K loop (2..1) is empty: newA = InitialA.
        from repro.core.paper import jacobi_analyzed

        initial = np.arange(16.0).reshape(4, 4)
        out = execute_module(
            jacobi_analyzed(), {"InitialA": initial, "M": 2, "maxK": 1}
        )
        np.testing.assert_allclose(out["newA"], initial)


class TestCodegenErrors:
    def test_atomic_equation_in_c(self):
        from repro.codegen.cgen import generate_c
        from repro.ps.parser import parse_program
        from repro.ps.semantics import analyze_program

        program = analyze_program(
            parse_program(
                "DivMod: module (a: int; b: int): [q: int; r: int];\n"
                "define q = a div b; r = a mod b; end DivMod;\n"
                "Use: module (x: int): [s: int];\n"
                "var q: int; r: int;\n"
                "define q, r = DivMod(x, 3); s = q + r; end Use;"
            )
        )
        with pytest.raises(CodegenError, match="multi-result"):
            generate_c(program["Use"])


class TestSchedulerDeterminism:
    def test_same_module_same_schedule(self):
        """Scheduling is a pure function of the module text."""
        from repro.core.paper import RELAXATION_JACOBI_SOURCE

        flows = [
            schedule_module(analyze(RELAXATION_JACOBI_SOURCE)).pretty()
            for _ in range(3)
        ]
        assert len(set(flows)) == 1

    def test_window_analysis_deterministic(self):
        from repro.core.paper import RELAXATION_GAUSS_SEIDEL_SOURCE

        windows = [
            schedule_module(analyze(RELAXATION_GAUSS_SEIDEL_SOURCE)).windows
            for _ in range(3)
        ]
        assert all(w == windows[0] for w in windows)
