"""plot_trend renders gated speedups into a well-formed SVG + table."""

import json
import pathlib
import sys
import xml.dom.minidom

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import plot_trend  # noqa: E402
from diff_trend import GateSchemaError  # noqa: E402


def _run_dir(tmp_path, name, speedup):
    d = tmp_path / name
    d.mkdir()
    (d / "BENCH_x.json").write_text(
        json.dumps(
            {"gates": {"g": {"speedup": speedup, "required": 1.5, "passed": True}}}
        )
    )
    return d


class TestRender:
    def test_svg_and_table(self, tmp_path):
        dirs = [
            _run_dir(tmp_path, "baseline", 2.0),
            _run_dir(tmp_path, "run-1", 2.4),
        ]
        svg, table = plot_trend.render(dirs)
        xml.dom.minidom.parseString(svg)  # well-formed
        assert "Gated benchmark speedups" in svg
        assert "gate 1.5x" in svg  # threshold rule labeled
        assert "2.40x" in svg  # latest value direct-labeled
        assert "baseline" in table and "run-1" in table

    def test_below_gate_points_are_flagged(self, tmp_path):
        """A value under its gate renders in the alert hue with the
        verdict in its tooltip; passing values stay in the series hue."""
        dirs = [
            _run_dir(tmp_path, "baseline", 2.0),
            _run_dir(tmp_path, "run-1", 1.2),  # under the 1.5 gate
        ]
        svg, _ = plot_trend.render(dirs)
        xml.dom.minidom.parseString(svg)
        assert plot_trend.ALERT in svg
        assert "run-1: 1.2x — below gate" in svg
        # The passing point keeps the series hue and a plain tooltip.
        assert "baseline: 2x</title>" in svg

    def test_passing_points_carry_no_alert(self, tmp_path):
        dirs = [
            _run_dir(tmp_path, "baseline", 2.0),
            _run_dir(tmp_path, "run-1", 2.4),
        ]
        svg, _ = plot_trend.render(dirs)
        assert plot_trend.ALERT not in svg
        assert "below gate" not in svg

    def test_missing_runs_tolerated(self, tmp_path):
        """A key absent from one run plots the points it has."""
        d1 = _run_dir(tmp_path, "a", 2.0)
        d2 = tmp_path / "b"
        d2.mkdir()
        (d2 / "BENCH_x.json").write_text(json.dumps({"gates": {}}))
        svg, table = plot_trend.render([d1, d2])
        xml.dom.minidom.parseString(svg)
        assert "-" in table

    def test_no_speedups_is_a_clear_error(self, tmp_path):
        d = tmp_path / "empty"
        d.mkdir()
        (d / "BENCH_x.json").write_text(json.dumps({"gates": {}}))
        with pytest.raises(GateSchemaError, match="no gated speedup"):
            plot_trend.render([d])

    def test_main_writes_file(self, tmp_path, capsys):
        dirs = [
            _run_dir(tmp_path, "baseline", 2.0),
            _run_dir(tmp_path, "run-1", 1.9),
        ]
        out = tmp_path / "trend.svg"
        rc = plot_trend.main([str(dirs[0]), str(dirs[1]), "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "gated speedup" in capsys.readouterr().out
