"""The ``repro serve`` / ``repro client`` commands, driven as real
subprocesses over a unix socket — the same round trip CI's bench-smoke
runs."""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.core.paper import RELAXATION_JACOBI_SOURCE

REPO = Path(__file__).resolve().parents[2]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _client(*argv, sock):
    return subprocess.run(
        [sys.executable, "-m", "repro", "client", *argv, "--socket", sock],
        capture_output=True,
        text=True,
        env=_env(),
        timeout=120,
    )


@pytest.fixture()
def daemon_proc(tmp_path):
    # unix socket paths are capped (~108 bytes); keep it in a short tmp dir
    sockdir = tempfile.mkdtemp(prefix="repro-serve-")
    sock = os.path.join(sockdir, "d.sock")
    module = tmp_path / "relax.ps"
    module.write_text(RELAXATION_JACOBI_SOURCE)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(module),
            "--socket", sock, "--warm", "M=6", "--warm", "maxK=2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    deadline = time.monotonic() + 120
    while not os.path.exists(sock):
        if proc.poll() is not None:
            raise AssertionError(
                f"serve died before binding: {proc.stderr.read()}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("serve never bound its socket")
        time.sleep(0.1)
    yield proc, sock
    if proc.poll() is None:
        proc.terminate()
        proc.wait(timeout=30)


def test_full_round_trip_and_clean_shutdown(daemon_proc):
    proc, sock = daemon_proc

    out = _client("ping", sock=sock)
    assert out.returncode == 0 and out.stdout.strip() == "pong"

    out = _client("modules", sock=sock)
    assert out.stdout.split() == ["Relaxation"]

    out = _client(
        "run", "Relaxation", "--set", "M=6", "--set", "maxK=2", sock=sock
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.startswith("newA =")

    out = _client("stats", sock=sock)
    stats = json.loads(out.stdout)
    assert stats["runs"] >= 1

    out = _client("shutdown", sock=sock)
    assert out.returncode == 0, out.stderr
    assert proc.wait(timeout=60) == 0, "serve must exit 0 after shutdown"
    assert "serving on" in proc.stdout.read()


def test_client_error_paths(daemon_proc):
    proc, sock = daemon_proc

    out = _client("run", "Nope", "--set", "M=6", sock=sock)
    assert out.returncode == 1
    assert "unknown module" in out.stderr

    # daemon must still be alive and serving after the bad request
    out = _client("ping", sock=sock)
    assert out.stdout.strip() == "pong"


def test_client_without_daemon_reports_transport_error(tmp_path):
    out = _client("ping", sock=str(tmp_path / "nothing.sock"))
    assert out.returncode == 1
    assert "cannot connect" in out.stderr
