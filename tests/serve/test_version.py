"""The package version is single-sourced: ``repro.__version__`` is the
only place it is written, and pyproject.toml reads it dynamically. The
historical drift (``__init__`` said 1.2.0 while pyproject said 1.3.0)
cannot recur as long as these hold."""

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parents[2] / "pyproject.toml"


def _load_pyproject() -> dict:
    try:
        import tomllib
    except ModuleNotFoundError:  # 3.10: no stdlib TOML reader
        return {}
    with open(PYPROJECT, "rb") as fh:
        return tomllib.load(fh)


def test_version_is_semver():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


def test_pyproject_declares_no_literal_version():
    text = PYPROJECT.read_text()
    assert not re.search(r"^version\s*=\s*\"", text, re.MULTILINE), (
        "pyproject.toml hardcodes a version again — it must stay dynamic "
        "(single-sourced from repro.__version__)"
    )


def test_pyproject_sources_version_from_package():
    data = _load_pyproject()
    if not data:
        # tomllib unavailable: the regex check above still guards drift
        assert "repro.__version__" in PYPROJECT.read_text()
        return
    assert "version" in data["project"]["dynamic"]
    attr = data["tool"]["setuptools"]["dynamic"]["version"]["attr"]
    assert attr == "repro.__version__"


def test_version_exported():
    assert "__version__" in repro.__all__
