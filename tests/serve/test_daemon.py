"""The serve daemon over a real socket: concurrent bit-exact clients,
structured errors that keep the connection alive, deterministic
backpressure, and clean shutdown."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.paper import RELAXATION_JACOBI_SOURCE
from repro.errors import ClientError
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.serve import DaemonThread, ReproClient, Session

SIZES = {"M": 6, "maxK": 2}


def make_input(seed: int, m: int = 6) -> np.ndarray:
    return np.random.default_rng(seed).random((m + 2, m + 2))


def serial_reference(session: Session, args: dict) -> np.ndarray:
    result = session.result_for("Relaxation")
    return execute_module(
        result.analyzed,
        dict(args),
        flowchart=result.flowchart,
        options=ExecutionOptions(backend="serial"),
    )["newA"]


@pytest.fixture()
def served():
    """A warm session behind a TCP daemon; yields (daemon, session)."""
    session = Session()
    session.load(RELAXATION_JACOBI_SOURCE)
    session.warm("Relaxation", SIZES)
    with DaemonThread(session, port=0) as daemon:
        yield daemon, session


def connect(daemon) -> ReproClient:
    host, port = daemon.address
    return ReproClient(host=host, port=port)


class TestProtocol:
    def test_ping_modules_describe_stats(self, served):
        daemon, _ = served
        with connect(daemon) as client:
            assert client.ping() == "pong"
            assert client.modules() == ["Relaxation"]
            desc = client.describe("Relaxation")
            assert desc["results"] == ["newA"]
            assert client.stats()["modules"] == ["Relaxation"]

    def test_run_round_trips_float64_bit_exactly(self, served):
        daemon, session = served
        args = {**SIZES, "InitialA": make_input(0)}
        expected = serial_reference(session, args)
        with connect(daemon) as client:
            out = client.run("Relaxation", args)
        assert out["newA"].dtype == np.float64
        assert np.array_equal(out["newA"], expected)

    def test_plan_op_reports_backend(self, served):
        daemon, _ = served
        with connect(daemon) as client:
            plan = client.plan("Relaxation", SIZES)
        assert set(plan) >= {"backend", "workers", "cycles", "strategies"}

    def test_server_side_fill_is_seeded(self, served):
        daemon, _ = served
        with connect(daemon) as client:
            a = client.run("Relaxation", dict(SIZES), fill=True, seed=7)
            b = client.run("Relaxation", dict(SIZES), fill=True, seed=7)
            c = client.run("Relaxation", dict(SIZES), fill=True, seed=8)
        assert np.array_equal(a["newA"], b["newA"])
        assert not np.array_equal(a["newA"], c["newA"])


class TestStructuredErrors:
    def test_unknown_module(self, served):
        daemon, _ = served
        with connect(daemon) as client:
            with pytest.raises(ClientError) as exc:
                client.run("Nope", {})
            assert exc.value.kind == "UnknownModule"
            assert client.ping() == "pong"  # connection survives

    def test_unknown_op(self, served):
        daemon, _ = served
        with connect(daemon) as client:
            with pytest.raises(ClientError) as exc:
                client.request({"op": "frobnicate"})
            assert exc.value.kind == "BadRequest"

    def test_bad_execution_override(self, served):
        daemon, _ = served
        with connect(daemon) as client:
            with pytest.raises(ClientError) as exc:
                client.request(
                    {
                        "op": "run",
                        "module": "Relaxation",
                        "args": {},
                        "execution": {"bogus": 1},
                    }
                )
            assert exc.value.kind == "BadRequest"
            assert "bogus" in str(exc.value)

    def test_args_must_be_object(self, served):
        daemon, _ = served
        with connect(daemon) as client:
            with pytest.raises(ClientError) as exc:
                client.request(
                    {"op": "run", "module": "Relaxation", "args": [1, 2]}
                )
            assert exc.value.kind == "BadRequest"

    def test_malformed_json_keeps_connection_alive(self, served):
        daemon, _ = served
        with connect(daemon) as client:
            client._sock.sendall(b"{not json}\n")
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "BadRequest"
            assert client.ping() == "pong"

    def test_non_object_request(self, served):
        daemon, _ = served
        with connect(daemon) as client:
            client._sock.sendall(b"[1, 2, 3]\n")
            response = json.loads(client._file.readline())
            assert response["error"]["type"] == "BadRequest"


class TestConcurrency:
    def test_concurrent_clients_bit_exact_and_isolated(self, served):
        """Eight clients, eight sockets, eight different inputs — every
        response equals a serial run of that client's own input."""
        daemon, session = served
        inputs = [make_input(200 + i) for i in range(8)]
        expected = [
            serial_reference(session, {**SIZES, "InitialA": a})
            for a in inputs
        ]
        barrier = threading.Barrier(8)

        def one_client(i):
            with connect(daemon) as client:
                barrier.wait()
                return client.run(
                    "Relaxation", {**SIZES, "InitialA": inputs[i]}
                )["newA"]

        with ThreadPoolExecutor(8) as pool:
            outputs = list(pool.map(one_client, range(8)))
        for i in range(8):
            assert np.array_equal(outputs[i], expected[i]), f"client {i}"

    def test_overload_returns_structured_error(self, monkeypatch):
        """With one execution slot, no queue, and a run that blocks until
        released, a second concurrent request must be answered Overloaded
        immediately — not buffered without bound."""
        session = Session()
        session.load(RELAXATION_JACOBI_SOURCE)
        entered = threading.Event()
        release = threading.Event()

        def slow_run(module, args, **overrides):
            entered.set()
            assert release.wait(30)
            return {}

        monkeypatch.setattr(session, "run", slow_run)
        with DaemonThread(session, port=0, max_inflight=1, max_queue=0) as daemon:
            first = connect(daemon)
            result = []
            worker = threading.Thread(
                target=lambda: result.append(
                    first.request(
                        {"op": "run", "module": "Relaxation", "args": {}}
                    )
                )
            )
            worker.start()
            assert entered.wait(30), "first request never started executing"
            with connect(daemon) as second:
                with pytest.raises(ClientError) as exc:
                    second.run("Relaxation", {})
                assert exc.value.kind == "Overloaded"
            release.set()
            worker.join(30)
            assert result == [{}]
            first.close()


class TestShutdown:
    def test_client_shutdown_stops_daemon_and_closes_session(self):
        session = Session()
        session.load(RELAXATION_JACOBI_SOURCE)
        runner = DaemonThread(session, port=0)
        daemon = runner.start()
        with connect(daemon) as client:
            assert client.shutdown() == "shutting down"
        runner.join(30)
        assert not runner._thread.is_alive()
        assert session.closed
        runner.stop()  # idempotent after a client-driven shutdown
