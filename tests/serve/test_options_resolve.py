"""ExecutionOptions.resolve — the one options-resolution path — and the
deprecation of the scattered ``backend=``/``workers=`` kwargs it replaced."""

import numpy as np
import pytest

from repro.core.paper import RELAXATION_JACOBI_SOURCE
from repro.core.pipeline import CompileResult, compile_source
from repro.runtime.executor import ExecutionOptions

ARGS = {"M": 4, "maxK": 2}


class TestResolve:
    def test_no_base_no_overrides_is_defaults(self):
        assert ExecutionOptions.resolve() == ExecutionOptions()

    def test_overrides_apply_over_base(self):
        base = ExecutionOptions(backend="threaded", workers=3)
        merged = ExecutionOptions.resolve(base, backend="serial")
        assert merged.backend == "serial"
        assert merged.workers == 3

    def test_none_override_keeps_base_value(self):
        base = ExecutionOptions(backend="threaded", workers=3)
        merged = ExecutionOptions.resolve(base, backend=None, workers=None)
        assert merged == base

    def test_base_is_never_mutated(self):
        base = ExecutionOptions(backend="threaded")
        ExecutionOptions.resolve(base, backend="process", workers=9)
        assert base.backend == "threaded"
        assert base.workers is None

    def test_no_effective_overrides_returns_base(self):
        base = ExecutionOptions(workers=2)
        assert ExecutionOptions.resolve(base, backend=None) is base

    def test_unknown_field_raises_with_name(self):
        with pytest.raises(TypeError, match="bogus_field"):
            ExecutionOptions.resolve(None, bogus_field=1)

    def test_base_is_positional_only(self):
        # keyword base would silently collide with a field named "base" if
        # one ever appeared; the signature forbids it outright
        with pytest.raises(TypeError):
            ExecutionOptions.resolve(base=ExecutionOptions())

    def test_false_and_zero_are_real_overrides(self):
        base = ExecutionOptions(use_kernels=True, vectorize=True)
        merged = ExecutionOptions.resolve(base, use_kernels=False)
        assert merged.use_kernels is False
        assert merged.vectorize is True


class TestDeprecatedKwargs:
    @pytest.fixture(scope="class")
    def result(self):
        return compile_source(RELAXATION_JACOBI_SOURCE)

    def test_run_backend_kwarg_warns_and_still_works(self, result):
        rng = np.random.default_rng(0)
        args = {**ARGS, "InitialA": rng.random((6, 6))}
        with pytest.warns(DeprecationWarning, match="run.*deprecated"):
            old = result.run(dict(args), backend="serial")
        new = result.run(
            dict(args),
            execution=ExecutionOptions.resolve(None, backend="serial"),
        )
        assert np.array_equal(old["newA"], new["newA"])

    def test_plan_workers_kwarg_warns(self, result):
        with pytest.warns(DeprecationWarning, match="plan.*deprecated"):
            plan = result.plan(ARGS, backend="threaded", workers=2)
        assert plan.backend == "threaded"
        assert plan.workers == 2

    def test_execution_object_path_does_not_warn(self, result):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result.plan(ARGS, execution=ExecutionOptions(backend="serial"))

    def test_merge_execution_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="_merge_execution"):
            merged = CompileResult._merge_execution(
                ExecutionOptions(workers=5), "threaded", None
            )
        assert merged == ExecutionOptions(backend="threaded", workers=5)
