"""The Session contract: compile-once/run-many amortization, warm state,
per-request input isolation, persistent pools, and clean teardown."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.runtime.backends.process as process_mod
import repro.runtime.kernels.cache as cache_mod
from repro.core.paper import RELAXATION_JACOBI_SOURCE
from repro.errors import SessionError
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.serve import Session

SIZES = {"M": 8, "maxK": 3}


def make_input(seed: int, m: int = 8) -> np.ndarray:
    return np.random.default_rng(seed).random((m + 2, m + 2))


def serial_reference(session: Session, name: str, args: dict) -> dict:
    result = session.result_for(name)
    return execute_module(
        result.analyzed,
        dict(args),
        flowchart=result.flowchart,
        options=ExecutionOptions(backend="serial"),
    )


class TestLoading:
    def test_load_returns_module_name(self):
        with Session() as s:
            assert s.load(RELAXATION_JACOBI_SOURCE) == "Relaxation"
            assert s.modules() == ["Relaxation"]

    def test_reload_same_source_dedups(self):
        with Session() as s:
            s.load(RELAXATION_JACOBI_SOURCE)
            first = s.result_for("Relaxation")
            s.load(RELAXATION_JACOBI_SOURCE)
            assert s.result_for("Relaxation") is first
            assert s.modules() == ["Relaxation"]

    def test_different_source_same_name_collides(self):
        with Session() as s:
            s.load(RELAXATION_JACOBI_SOURCE)
            with pytest.raises(SessionError, match="already served"):
                s.load(RELAXATION_JACOBI_SOURCE + "\n")

    def test_explicit_name_resolves_collision(self):
        with Session() as s:
            s.load(RELAXATION_JACOBI_SOURCE)
            served = s.load(RELAXATION_JACOBI_SOURCE + "\n", name="Relax2")
            assert served == "Relax2"
            assert s.modules() == ["Relax2", "Relaxation"]

    def test_unknown_module_is_session_error(self):
        with Session() as s:
            with pytest.raises(SessionError, match="unknown module"):
                s.run("Nope", {})

    def test_describe_signature(self):
        with Session() as s:
            s.load(RELAXATION_JACOBI_SOURCE)
            desc = s.describe("Relaxation")
            assert desc["module"] == "Relaxation"
            assert desc["results"] == ["newA"]
            by_name = {p["name"]: p for p in desc["params"]}
            assert by_name["InitialA"]["kind"] == "array"
            assert by_name["InitialA"]["rank"] == 2
            assert by_name["M"]["kind"] == "scalar"


class TestExecution:
    @pytest.fixture()
    def session(self):
        with Session() as s:
            s.load(RELAXATION_JACOBI_SOURCE)
            yield s

    def test_run_bit_exact_vs_serial(self, session):
        args = {**SIZES, "InitialA": make_input(0)}
        out = session.run("Relaxation", args)
        ref = serial_reference(session, "Relaxation", args)
        assert np.array_equal(out["newA"], ref["newA"])

    def test_inputs_never_mutated(self, session):
        original = make_input(1)
        args = {**SIZES, "InitialA": original}
        before = original.copy()
        session.run("Relaxation", args)
        assert np.array_equal(original, before)

    def test_second_run_after_warm_compiles_nothing(self, session, monkeypatch):
        """warm() does all compilation up front: a subsequent run() must
        never reach any kernel compiler (NumPy exec tier, fused nest tier,
        or the cffi native tier)."""
        session.warm("Relaxation", SIZES)
        args = {**SIZES, "InitialA": make_input(2)}
        # reference computed first: it uses a fresh kernel cache and is
        # allowed to compile — only the warmed session is not
        ref = serial_reference(session, "Relaxation", args)

        def forbid(name):
            def _fail(*a, **k):
                raise AssertionError(f"{name} ran after warm()")

            return _fail

        monkeypatch.setattr(
            cache_mod, "compile_kernel", forbid("compile_kernel")
        )
        monkeypatch.setattr(
            cache_mod, "compile_nest_kernel", forbid("compile_nest_kernel")
        )
        monkeypatch.setattr(
            cache_mod.native_mod,
            "compile_native_nest",
            forbid("compile_native_nest"),
        )
        out = session.run("Relaxation", args)
        assert np.array_equal(out["newA"], ref["newA"])

    def test_plan_coalesces_concurrent_lookups(self, session):
        barrier = threading.Barrier(8)

        def lookup(_):
            barrier.wait()
            return session.plan("Relaxation", SIZES)

        with ThreadPoolExecutor(8) as pool:
            plans = list(pool.map(lookup, range(8)))
        assert all(p is plans[0] for p in plans)
        stats = session.stats()
        assert stats.plan_requests >= 8
        assert stats.plans_built == 1

    def test_concurrent_runs_isolated_and_bit_exact(self, session):
        """Eight concurrent clients with different inputs each get exactly
        the answer a serial run of their own input produces."""
        session.warm("Relaxation", SIZES)
        inputs = [make_input(100 + i) for i in range(8)]
        pristine = [a.copy() for a in inputs]
        expected = [
            serial_reference(
                session, "Relaxation", {**SIZES, "InitialA": a}
            )["newA"]
            for a in inputs
        ]
        barrier = threading.Barrier(8)

        def client(i):
            barrier.wait()
            return session.run(
                "Relaxation", {**SIZES, "InitialA": inputs[i]}
            )["newA"]

        with ThreadPoolExecutor(8) as pool:
            outputs = list(pool.map(client, range(8)))
        for i in range(8):
            assert np.array_equal(outputs[i], expected[i]), f"client {i}"
            assert np.array_equal(inputs[i], pristine[i]), f"client {i} input"

    def test_stats_counts_runs(self, session):
        session.run("Relaxation", {**SIZES, "InitialA": make_input(3)})
        session.run("Relaxation", {**SIZES, "InitialA": make_input(4)})
        stats = session.stats()
        assert stats.runs == 2
        assert stats.modules == ["Relaxation"]


class TestLifecycle:
    def test_close_is_idempotent_and_final(self):
        s = Session()
        s.load(RELAXATION_JACOBI_SOURCE)
        s.close()
        s.close()
        with pytest.raises(SessionError, match="closed"):
            s.run("Relaxation", {**SIZES, "InitialA": make_input(0)})
        with pytest.raises(SessionError, match="closed"):
            s.load(RELAXATION_JACOBI_SOURCE)

    def test_context_manager_closes(self):
        with Session() as s:
            s.load(RELAXATION_JACOBI_SOURCE)
        assert s.closed


@pytest.mark.skipif(
    not process_mod._fork_available(), reason="fork unavailable"
)
class TestPersistentPools:
    def _session(self, workers: int = 2) -> Session:
        s = Session(
            execution=ExecutionOptions(backend="process", workers=workers)
        )
        s.load(RELAXATION_JACOBI_SOURCE)
        return s

    def test_pool_pids_survive_across_runs_and_sizes(self):
        with self._session() as s:
            s.warm("Relaxation", {"M": 16, "maxK": 3})
            backend = next(iter(s._backends.values())).backend
            pids = {p.pid for p in backend._procs}
            assert len(pids) == 2, "warm must fork the pool"
            for seed, m in [(0, 16), (1, 24), (2, 16)]:
                args = {"M": m, "maxK": 3, "InitialA": make_input(seed, m)}
                out = s.run("Relaxation", args)
                ref = serial_reference(s, "Relaxation", args)
                assert np.array_equal(out["newA"], ref["newA"])
            assert {p.pid for p in backend._procs} == pids

    def test_concurrent_pool_runs_serialize_correctly(self):
        with self._session() as s:
            s.warm("Relaxation", {"M": 12, "maxK": 3})
            inputs = [make_input(i, 12) for i in range(4)]
            expected = [
                serial_reference(
                    s, "Relaxation", {"M": 12, "maxK": 3, "InitialA": a}
                )["newA"]
                for a in inputs
            ]

            def client(i):
                return s.run(
                    "Relaxation", {"M": 12, "maxK": 3, "InitialA": inputs[i]}
                )["newA"]

            with ThreadPoolExecutor(4) as pool:
                outputs = list(pool.map(client, range(4)))
            for i in range(4):
                assert np.array_equal(outputs[i], expected[i])

    def test_close_terminates_pool_and_unlinks_all_segments(self, monkeypatch):
        class Spy(process_mod.shared_memory.SharedMemory):
            created: list = []
            unlinked: list = []

            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    Spy.created.append(self.name)

            def unlink(self):
                Spy.unlinked.append(self.name)
                super().unlink()

        monkeypatch.setattr(process_mod.shared_memory, "SharedMemory", Spy)
        s = self._session()
        s.warm("Relaxation", {"M": 16, "maxK": 3})
        for seed in range(2):
            s.run(
                "Relaxation",
                {"M": 16, "maxK": 3, "InitialA": make_input(seed, 16)},
            )
        backend = next(iter(s._backends.values())).backend
        procs = list(backend._procs)
        assert procs
        s.close()
        assert Spy.created, "expected shared-memory storage"
        assert set(Spy.created) == set(Spy.unlinked)
        for p in procs:
            p.join(timeout=10)
            assert p.exitcode is not None, "pool worker still alive"
