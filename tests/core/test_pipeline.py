"""Tests for the top-level compile pipeline and the public API surface."""

import numpy as np
import pytest

import repro
from repro.core.paper import (
    RELAXATION_GAUSS_SEIDEL_SOURCE,
    RELAXATION_JACOBI_SOURCE,
)
from repro.core.pipeline import CompilerOptions, compile_source


class TestCompileSource:
    def test_default_pipeline(self):
        result = compile_source(RELAXATION_JACOBI_SOURCE)
        assert result.analyzed.name == "Relaxation"
        assert result.c_source and "void Relaxation(" in result.c_source
        assert result.python_source and "def Relaxation(" in result.python_source
        assert ("DO", "K") in result.flowchart.loop_kinds()

    def test_run(self):
        result = compile_source(RELAXATION_JACOBI_SOURCE)
        rng = np.random.default_rng(0)
        m, maxk = 4, 3
        out = result.run({"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk})
        assert out["newA"].shape == (m + 2, m + 2)

    def test_compiled_python_matches_run(self):
        result = compile_source(RELAXATION_JACOBI_SOURCE)
        fn = result.compile_python()
        rng = np.random.default_rng(1)
        m, maxk = 4, 4
        initial = rng.random((m + 2, m + 2))
        out = result.run({"InitialA": initial, "M": m, "maxK": maxk})
        np.testing.assert_allclose(fn(initial, m, maxk), out["newA"])

    def test_hyperplane_option(self):
        result = compile_source(
            RELAXATION_GAUSS_SEIDEL_SOURCE, CompilerOptions(hyperplane=True)
        )
        assert result.hyperplane_result is not None
        assert result.hyperplane_result.pi == (2, 1, 1)
        assert result.analyzed.name == "RelaxationHyper"
        # The transformed pipeline still runs and matches the original.
        rng = np.random.default_rng(2)
        m, maxk = 4, 4
        initial = rng.random((m + 2, m + 2))
        plain = compile_source(RELAXATION_GAUSS_SEIDEL_SOURCE)
        a = plain.run({"InitialA": initial, "M": m, "maxK": maxk})["newA"]
        b = result.run({"InitialA": initial, "M": m, "maxK": maxk})["newA"]
        np.testing.assert_allclose(a, b)

    def test_merge_option(self):
        src = (
            "T: module (X: array[I] of real):\n"
            "   [A: array[I] of real; B: array[I] of real];\n"
            "type I = 0 .. 7;\n"
            "define A = X + 1; B = X * 2;\nend T;"
        )
        merged = compile_source(src, CompilerOptions(merge_loops=True))
        plain = compile_source(src)
        assert len(merged.flowchart.loops()) < len(plain.flowchart.loops())

    def test_windows_disabled(self):
        result = compile_source(
            RELAXATION_JACOBI_SOURCE, CompilerOptions(use_windows=False)
        )
        assert "% 2" not in result.c_source

    def test_codegen_failure_becomes_warning(self):
        src = (
            "T: module (p: record x: real end): [y: real];\n"
            "define y = p.x;\nend T;"
        )
        result = compile_source(src)
        assert result.c_source is None
        assert any("C generation skipped" in w for w in result.warnings)
        # The interpreter still runs it.
        assert result.run({"p.x": 2.5})["y"] == 2.5


class TestPublicApi:
    def test_lazy_exports(self):
        assert callable(repro.parse_module)
        assert callable(repro.compile_source)
        assert callable(repro.schedule_module)
        assert callable(repro.hyperplane_transform)
        assert callable(repro.execute_module)
        assert isinstance(repro.RELAXATION_JACOBI_SOURCE, str)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.nonexistent_thing

    def test_quickstart_docstring_flow(self):
        result = repro.compile_source(repro.RELAXATION_JACOBI_SOURCE)
        assert "DOALL" in result.flowchart.pretty()
