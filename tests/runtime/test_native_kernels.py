"""Native-tier parity: the cffi-compiled C kernels == the evaluator, bit
for bit, and everything degrades cleanly without a C compiler.

Every paper workload runs with the native tier forced on every backend, in
both window modes, against the kernel-less serial reference. The tests
also pin the tier mechanics: lookup order native -> NumPy -> evaluator,
the on-disk artifact cache (second compile of the same source reuses the
``.so``), the out-of-range error parity, and the no-compiler environment
(native tier silently unavailable, NumPy tier used, results unchanged).
"""

import numpy as np
import pytest

from repro.core.paper import jacobi_analyzed
from repro.errors import ExecutionError
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.kernels import KernelCache, native_supported
from repro.runtime.kernels import native as native_mod
from repro.schedule.flowchart import LoopDescriptor
from repro.schedule.scheduler import schedule_module

from tests.runtime.test_kernels import ALL_BACKENDS, WORKLOADS

needs_toolchain = pytest.mark.skipif(
    not native_supported(), reason="no C compiler / cffi on this machine"
)


@pytest.fixture()
def native_cache_dir(tmp_path, monkeypatch):
    """A private on-disk cache, with the in-process dlopen memo cleared so
    compilations actually hit the directory under test."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    native_mod._loaded.clear()
    return tmp_path


def _options(backend, tier, use_windows=False):
    return ExecutionOptions(
        backend=backend, workers=4, kernel_tier=tier, use_windows=use_windows
    )


def _outermost_parallel(descs):
    for d in descs:
        if not isinstance(d, LoopDescriptor):
            continue
        if d.parallel:
            yield d
        else:
            yield from _outermost_parallel(d.body)


@needs_toolchain
class TestNativeParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("use_windows", [False, True])
    def test_bit_exact_on_every_workload(
        self, backend, use_windows, native_cache_dir
    ):
        for name, analyzed, flow, args, result in WORKLOADS:
            expected = execute_module(
                analyzed, args, flowchart=flow,
                options=ExecutionOptions(
                    backend="serial", use_kernels=False, use_windows=use_windows
                ),
            )[result]
            got = execute_module(
                analyzed, args, flowchart=flow,
                options=_options(backend, "native", use_windows),
            )[result]
            assert np.array_equal(got, expected), (name, backend, use_windows)

    def test_native_kernels_actually_compile(self, native_cache_dir):
        """The Jacobi nests must land on the native tier, not silently
        fall back — the cache stats prove which tier served them."""
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        cache = KernelCache(analyzed, flow)
        rng = np.random.default_rng(1)
        args = {"InitialA": rng.random((8, 8)), "M": 6, "maxK": 4}
        execute_module(
            analyzed, args, flowchart=flow, kernel_cache=cache,
            options=_options("serial", "native"),
        )
        assert cache.stats()["native"] > 0
        assert list(native_cache_dir.glob("*.so"))  # artifacts persisted

    def test_numpy_tier_skips_native(self, native_cache_dir):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        cache = KernelCache(analyzed, flow)
        rng = np.random.default_rng(2)
        args = {"InitialA": rng.random((8, 8)), "M": 6, "maxK": 4}
        execute_module(
            analyzed, args, flowchart=flow, kernel_cache=cache,
            options=_options("serial", "numpy"),
        )
        assert cache.stats()["native"] == 0

    def test_evaluator_tier_uses_no_kernels(self):
        analyzed = jacobi_analyzed()
        rng = np.random.default_rng(3)
        args = {"InitialA": rng.random((8, 8)), "M": 6, "maxK": 4}
        on = execute_module(analyzed, args, options=_options("serial", "native"))
        off = execute_module(
            analyzed, args, options=_options("serial", "evaluator")
        )
        assert np.array_equal(on["newA"], off["newA"])

    def test_out_of_range_error_parity(self, native_cache_dir):
        """The C kernel reports the evaluator's exact out-of-range error
        through its error channel."""
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        # the second outermost DOALL is eq.3's sweep under the DO K loop —
        # the one whose A[K-1, ...] reads take K from the environment
        nest = list(_outermost_parallel(flow.descriptors))[1]
        kernel = native_mod.compile_native_nest(
            nest, analyzed, flow, use_windows=False
        )
        from repro.runtime.values import RuntimeArray

        maxk, m = 4, 5
        arr = RuntimeArray(
            "A", [1, 0, 0], [maxk, m + 1, m + 1],
            np.zeros((maxk, m + 2, m + 2)), {},
        )
        init = RuntimeArray(
            "InitialA", [0, 0], [m + 1, m + 1], np.zeros((m + 2, m + 2)), {}
        )
        data = {"A": arr, "InitialA": init, "M": m, "maxK": maxk}
        with pytest.raises(ExecutionError, match=r"out of range \[1, 4\]"):
            # env K=0 makes the A[K-1,...] read hit plane 0 of a 1-based dim
            kernel(data, {"K": 0}, 0, m + 1)

    def test_on_disk_cache_is_reused(self, native_cache_dir, monkeypatch):
        """A second cache compiles nothing: the .so is dlopened from disk
        (and within a process, the loaded library is memoized)."""
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        nest = next(_outermost_parallel(flow.descriptors))
        native_mod.compile_native_nest(nest, analyzed, flow, False)
        sos = list(native_cache_dir.glob("*.so"))
        assert sos

        calls = []
        real_run = native_mod.subprocess.run

        def spy(*args, **kwargs):
            calls.append(args)
            return real_run(*args, **kwargs)

        monkeypatch.setattr(native_mod.subprocess, "run", spy)
        native_mod._loaded.clear()  # force a fresh dlopen path
        native_mod.compile_native_nest(nest, analyzed, flow, False)
        assert calls == []  # compiler never invoked again

    def test_process_pool_inherits_native_kernels(self, native_cache_dir):
        """warm() loads the shared objects pre-fork; pool workers execute
        native chunks bit-exactly."""
        name, analyzed, flow, args, result = WORKLOADS[0]
        expected = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )[result]
        got = execute_module(
            analyzed, args, flowchart=flow,
            options=_options("process", "native"),
        )[result]
        assert np.array_equal(got, expected)


class TestGracefulDegradation:
    def test_no_compiler_falls_back_to_numpy_tier(self, monkeypatch):
        """A compiler-less environment must run every workload through the
        NumPy kernels — same results, no crash, native count zero."""
        monkeypatch.setattr(native_mod, "find_compiler", lambda: None)
        assert not native_mod.native_supported()
        for name, analyzed, flow, args, result in WORKLOADS:
            cache = KernelCache(analyzed, flow)
            expected = execute_module(
                analyzed, args, flowchart=flow,
                options=ExecutionOptions(backend="serial", use_kernels=False),
            )[result]
            got = execute_module(
                analyzed, args, flowchart=flow, kernel_cache=cache,
                options=_options("serial", "native"),
            )[result]
            assert np.array_equal(got, expected), name
            assert cache.stats()["native"] == 0

    def test_no_cffi_falls_back_too(self, monkeypatch):
        monkeypatch.setattr(native_mod, "_ffi_module", lambda: None)
        assert not native_mod.native_supported()
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        cache = KernelCache(analyzed, flow)
        nest = next(_outermost_parallel(flow.descriptors))
        assert cache.nest_kernel_for(nest, False, tier="native") is not None
        assert cache.stats()["native"] == 0  # served by the NumPy tier

    def test_compile_failure_degrades_not_crashes(self, monkeypatch, tmp_path):
        """A broken toolchain (compiler errors out) must yield the NumPy
        kernel, not an exception."""
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        native_mod._loaded.clear()
        monkeypatch.setattr(
            native_mod, "_compile_so",
            lambda source, digest: (_ for _ in ()).throw(
                native_mod.KernelError("simulated toolchain failure")
            ),
        )
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        cache = KernelCache(analyzed, flow)
        nest = next(_outermost_parallel(flow.descriptors))
        fn = cache.nest_kernel_for(nest, False, tier="native")
        assert fn is not None
        assert cache.stats()["native"] == 0


class TestEmittability:
    def test_paper_nests_are_emittable(self):
        """Machine-independent: every Jacobi nest lowers to C regardless
        of whether this box has a compiler."""
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        nests = list(_outermost_parallel(flow.descriptors))
        assert nests
        for nest in nests:
            assert native_mod.native_emittable(nest, analyzed, flow, False)

    def test_module_calls_are_not_emittable(self):
        from repro.ps.parser import parse_program
        from repro.ps.semantics import analyze_program

        from tests.runtime.test_kernels import CALL_PROGRAM_SOURCE

        program = analyze_program(parse_program(CALL_PROGRAM_SOURCE))
        use = program["Use"]
        flow = schedule_module(use)
        for nest in _outermost_parallel(flow.descriptors):
            assert not native_mod.native_emittable(nest, use, flow, False)

    def test_transcendentals_are_not_emittable(self):
        """sin/exp NumPy SIMD rounding is not guaranteed to match libm —
        such nests must stay on the NumPy tier."""
        from repro.ps.parser import parse_module
        from repro.ps.semantics import analyze_module

        src = (
            "T: module (n: int): [B: array[1 .. n] of real];\n"
            "type I = 1 .. n;\ndefine B[I] = sin(I * 0.1);\nend T;"
        )
        analyzed = analyze_module(parse_module(src))
        flow = schedule_module(analyzed)
        nest = next(_outermost_parallel(flow.descriptors))
        assert not native_mod.native_emittable(nest, analyzed, flow, False)

    def test_emitted_source_is_stable(self):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        nest = next(_outermost_parallel(flow.descriptors))
        a = native_mod.emit_native_nest_source(nest, analyzed, flow, False)
        b = native_mod.emit_native_nest_source(nest, analyzed, flow, False)
        assert a.source == b.source
        assert a.fn_name == b.fn_name
        assert "-ffp-contract=off" in " ".join(native_mod.C_FLAGS)


@needs_toolchain
class TestFlooredSemantics:
    def test_div_by_zero_raises_not_sigfpe(self, native_cache_dir):
        """A zero divisor is C undefined behaviour (SIGFPE kills the
        interpreter); the emitted guard must report it through the error
        channel and raise the evaluator's exact ZeroDivisionError."""
        from repro.ps.parser import parse_module
        from repro.ps.semantics import analyze_module

        src = (
            "T: module (k: int; n: int): [B: array[1 .. n] of int];\n"
            "type I = 1 .. n;\n"
            "define B[I] = I div k;\nend T;"
        )
        analyzed = analyze_module(parse_module(src))
        flow = schedule_module(analyzed)
        cache = KernelCache(analyzed, flow)
        with pytest.raises(
            ZeroDivisionError, match="integer division or modulo by zero"
        ):
            execute_module(
                analyzed, {"k": 0, "n": 6}, flowchart=flow,
                kernel_cache=cache, options=_options("serial", "native"),
            )
        assert cache.stats()["native"] > 0  # the C tier, not a fallback
        out = execute_module(
            analyzed, {"k": 3, "n": 6}, flowchart=flow, kernel_cache=cache,
            options=_options("serial", "native"),
        )["B"]
        ref = execute_module(
            analyzed, {"k": 3, "n": 6}, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]
        assert np.array_equal(out, ref)

    def test_div_mod_on_negative_operands(self, native_cache_dir):
        """PS div/mod are floored (Python semantics); the C tier must not
        inherit C's truncation — regression for the cgen bug the native
        tier's shared prelude fixes."""
        from repro.ps.parser import parse_module
        from repro.ps.semantics import analyze_module

        src = (
            "T: module (n: int): [B: array[1 .. n] of int];\n"
            "type I = 1 .. n;\n"
            "define B[I] = (I - 4) div 3 + (I - 4) mod 3;\nend T;"
        )
        analyzed = analyze_module(parse_module(src))
        flow = schedule_module(analyzed)
        args = {"n": 9}
        expected = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]
        cache = KernelCache(analyzed, flow)
        got = execute_module(
            analyzed, args, flowchart=flow, kernel_cache=cache,
            options=_options("serial", "native"),
        )["B"]
        assert cache.stats()["native"] > 0
        assert np.array_equal(got, expected)


class TestPersistPlan:
    def test_plan_saved_next_to_generated_c(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        sources = native_mod.emittable_nest_sources(analyzed, flow)
        assert sources  # Jacobi nests emit in both variants
        out = native_mod.persist_plan("Relaxation", "plan text", sources)
        assert (out / "plan.txt").read_text() == "plan text"
        assert len(list(out.glob("*.c"))) == len(sources)
        # idempotent: same text lands in the same keyed directory
        again = native_mod.persist_plan("Relaxation", "plan text", sources)
        assert again == out
