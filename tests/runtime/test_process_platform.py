"""Process-backend platform behaviour: spawn-only platforms fail loudly,
and shared-memory segments never outlive a run — even a failing one.

The historical bugs: on platforms without the fork start method (macOS's
default, Windows) the process backends half-degraded — ``make_storage``
silently fell back to private arrays while the pool path would crash with
``AttributeError: 'NoneType' object has no attribute 'Queue'`` — and a
backend was trusted to unlink its ``SharedMemory`` segments only on the
success path. These tests pin the fixes by monkeypatching
``_fork_available`` and by spying on every segment create/unlink.
"""

import numpy as np
import pytest

import repro.runtime.backends.process as process_mod
from repro.core.paper import jacobi_analyzed
from repro.errors import ExecutionError
from repro.ps.parser import parse_program
from repro.ps.semantics import analyze_program
from repro.runtime.backends import instantiate_backend
from repro.runtime.executor import (
    ExecutionOptions,
    execute_module,
    execute_program_module,
)


@pytest.fixture()
def spawn_only(monkeypatch):
    """Simulate a platform whose only start methods are spawn-family."""
    monkeypatch.setattr(process_mod, "_fork_available", lambda: False)


class TestSpawnOnlyPlatforms:
    @pytest.mark.parametrize("name", ["process", "process-fork"])
    def test_backend_construction_fails_clearly(self, spawn_only, name):
        with pytest.raises(ExecutionError, match="fork.*start method"):
            instantiate_backend(name, workers=4)

    def test_explicit_backend_names_the_platform(self, spawn_only):
        import sys

        with pytest.raises(ExecutionError, match=sys.platform):
            instantiate_backend("process", workers=4)

    def test_explicit_run_fails_not_attribute_errors(self, spawn_only):
        """--backend process must raise the readable error, never the old
        AttributeError out of _ensure_pool."""
        analyzed = jacobi_analyzed()
        rng = np.random.default_rng(0)
        args = {"InitialA": rng.random((6, 6)), "M": 4, "maxK": 3}
        with pytest.raises(ExecutionError, match="fork"):
            execute_module(
                analyzed, args,
                options=ExecutionOptions(backend="process", workers=4),
            )

    def test_auto_never_selects_process(self, spawn_only):
        """The planner's auto pool consults the same ``_fork_available``
        probe as the backends — one monkeypatch covers both layers — and
        drops the process backends, so auto runs fine on a spawn-only
        platform."""
        from repro.plan.planner import build_plan
        from repro.schedule.scheduler import schedule_module

        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="auto", workers=8),
            {"M": 64, "maxK": 8}, cpu_count=8,
        )
        assert plan.backend not in ("process", "process-fork")

    def test_pinned_plan_fails_clearly(self, spawn_only):
        from repro.plan.planner import build_plan
        from repro.schedule.scheduler import schedule_module

        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        with pytest.raises(ExecutionError, match="fork.*start method"):
            build_plan(
                analyzed, flow,
                ExecutionOptions(backend="process", workers=4),
                {"M": 8, "maxK": 3},
            )

    def test_compare_plans_skips_process_backends(self, spawn_only):
        """calibrate()/compare_plans must measure the runnable backends
        instead of dying on the process pins."""
        from repro.machine.report import compare_plans
        from repro.schedule.scheduler import schedule_module

        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        rng = np.random.default_rng(3)
        args = {"InitialA": rng.random((6, 6)), "M": 4, "maxK": 3}
        cmp = compare_plans(analyzed, flow, args, workers=2, repeats=1)
        measured = {r["backend"] for r in cmp.rows}
        assert measured
        assert not measured & {"process", "process-fork"}


#: the index-dependent module call is vector-unsafe and non-kernelizable,
#: so chunk workers run the scalar evaluator per element — whose
#: range-checked A[I+5] read raises mid-wavefront *inside the workers*
#: (an affine read on the vector path would be silently clipped instead)
FAILING_SOURCE = """\
Id: module (x: real): [y: real]; define y = x; end Id;
Use: module (A: array[1 .. n] of real; n: int): [B: array[1 .. n] of real];
type I = 1 .. n;
define B[I] = Id(A[I + 5] * I);
end Use;
"""


class _SpySharedMemory(process_mod.shared_memory.SharedMemory):
    """Counts creates and unlinks so a test can assert zero leaks."""

    created: list[str] = []
    unlinked: list[str] = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if kwargs.get("create"):
            _SpySharedMemory.created.append(self.name)

    def unlink(self):
        _SpySharedMemory.unlinked.append(self.name)
        super().unlink()


@pytest.mark.skipif(
    not process_mod._fork_available(), reason="fork unavailable"
)
class TestSharedMemoryCleanup:
    @pytest.mark.parametrize("backend", ["process", "process-fork"])
    def test_failing_run_leaves_no_segments(self, monkeypatch, backend):
        """A run that raises mid-wavefront must still unlink every
        SharedMemory segment it created."""
        _SpySharedMemory.created = []
        _SpySharedMemory.unlinked = []
        monkeypatch.setattr(
            process_mod.shared_memory, "SharedMemory", _SpySharedMemory
        )
        program = analyze_program(parse_program(FAILING_SOURCE))
        args = {"A": np.arange(1.0, 9.0), "n": 8}
        with pytest.raises(ExecutionError, match="out of range"):
            execute_program_module(
                program, "Use", args,
                options=ExecutionOptions(backend=backend, workers=4),
            )
        assert _SpySharedMemory.created, "expected shared-memory storage"
        leaked = set(_SpySharedMemory.created) - set(_SpySharedMemory.unlinked)
        assert not leaked

    def test_successful_run_leaves_no_segments(self, monkeypatch):
        _SpySharedMemory.created = []
        _SpySharedMemory.unlinked = []
        monkeypatch.setattr(
            process_mod.shared_memory, "SharedMemory", _SpySharedMemory
        )
        analyzed = jacobi_analyzed()
        rng = np.random.default_rng(1)
        args = {"InitialA": rng.random((8, 8)), "M": 6, "maxK": 4}
        execute_module(
            analyzed, args,
            options=ExecutionOptions(backend="process", workers=4),
        )
        assert _SpySharedMemory.created
        leaked = set(_SpySharedMemory.created) - set(_SpySharedMemory.unlinked)
        assert not leaked
