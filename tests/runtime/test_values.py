"""Unit tests for runtime values: bound evaluation and window arrays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.ps.parser import parse_expression
from repro.ps.types import IntType, RealType
from repro.runtime.values import RuntimeArray, eval_bound


class TestEvalBound:
    def test_literal(self):
        assert eval_bound(parse_expression("5"), {}) == 5

    def test_name(self):
        assert eval_bound(parse_expression("M"), {"M": 8}) == 8

    def test_arithmetic(self):
        assert eval_bound(parse_expression("2 * maxK + 2 * M + 2"), {"maxK": 10, "M": 4}) == 30

    def test_div_mod(self):
        assert eval_bound(parse_expression("n div 3"), {"n": 10}) == 3
        assert eval_bound(parse_expression("n mod 3"), {"n": 10}) == 1

    def test_unary_minus(self):
        assert eval_bound(parse_expression("-M"), {"M": 4}) == -4

    def test_unbound_name(self):
        with pytest.raises(ExecutionError, match="unbound"):
            eval_bound(parse_expression("Q"), {})

    @given(st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=50, deadline=None)
    def test_matches_python(self, a, b):
        env = {"a": a, "b": b}
        assert eval_bound(parse_expression("a + b * 2 - 3"), env) == a + b * 2 - 3


class TestRuntimeArrayBasics:
    def test_origin_shift(self):
        arr = RuntimeArray.allocate("A", RealType, [(2, 5)])
        arr.set([2], 1.5)
        arr.set([5], 2.5)
        assert arr.get([2]) == 1.5
        assert arr.get([5]) == 2.5
        assert arr.storage.shape == (4,)

    def test_out_of_range_read(self):
        arr = RuntimeArray.allocate("A", RealType, [(0, 3)])
        with pytest.raises(ExecutionError, match="out of range"):
            arr.get([4])
        with pytest.raises(ExecutionError, match="out of range"):
            arr.get([-1])

    def test_out_of_range_write(self):
        arr = RuntimeArray.allocate("A", RealType, [(0, 3)])
        with pytest.raises(ExecutionError, match="out of range"):
            arr.set([9], 1.0)

    def test_clip_mode(self):
        arr = RuntimeArray.allocate("A", RealType, [(0, 3)])
        arr.set([0], 7.0)
        assert arr.get([-5], clip=True) == 7.0  # clamped to index 0

    def test_vector_indexing(self):
        arr = RuntimeArray.allocate("A", RealType, [(1, 4)])
        idx = np.array([1, 2, 3, 4])
        arr.set([idx], np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(arr.get([idx]), [1, 2, 3, 4])

    def test_from_numpy_shape_check(self):
        with pytest.raises(ExecutionError, match="shape"):
            RuntimeArray.from_numpy("A", np.zeros((3, 3)), [(0, 3), (0, 3)])

    def test_to_numpy_of_windowed_rejected(self):
        arr = RuntimeArray.allocate("A", RealType, [(1, 10)], windows={0: 2})
        with pytest.raises(ExecutionError, match="window"):
            arr.to_numpy()

    def test_int_dtype(self):
        arr = RuntimeArray.allocate("A", IntType, [(0, 2)])
        assert arr.storage.dtype == np.int64

    def test_negative_extent_rejected(self):
        with pytest.raises(ExecutionError, match="negative"):
            RuntimeArray.allocate("A", RealType, [(5, 2)])


class TestWindows:
    def test_window_aliasing(self):
        arr = RuntimeArray.allocate("A", RealType, [(1, 10)], windows={0: 2})
        assert arr.storage.shape == (2,)
        arr.set([1], 1.0)
        arr.set([2], 2.0)
        assert arr.get([1]) == 1.0
        assert arr.get([2]) == 2.0
        arr.set([3], 3.0)  # overwrites the slot of 1
        assert arr.get([3]) == 3.0
        assert arr.get([2]) == 2.0

    def test_window_larger_than_extent_clamped(self):
        arr = RuntimeArray.allocate("A", RealType, [(1, 2)], windows={0: 5})
        assert arr.storage.shape == (2,)

    def test_debug_tags_catch_stale_read(self):
        arr = RuntimeArray.allocate(
            "A", RealType, [(1, 10)], windows={0: 2}, debug=True
        )
        arr.set([1], 1.0)
        arr.set([2], 2.0)
        arr.set([3], 3.0)  # evicts plane 1
        with pytest.raises(ExecutionError, match="window violation"):
            arr.get([1])

    def test_debug_tags_allow_fresh_reads(self):
        arr = RuntimeArray.allocate(
            "A", RealType, [(1, 10)], windows={0: 3}, debug=True
        )
        for k in range(1, 11):
            arr.set([k], float(k))
            if k >= 3:
                assert arr.get([k - 2]) == float(k - 2)

    def test_multidim_window(self):
        arr = RuntimeArray.allocate(
            "A", RealType, [(1, 100), (0, 4)], windows={0: 2}
        )
        assert arr.storage.shape == (2, 5)
        arr.set([1, np.arange(5)], np.arange(5.0))
        np.testing.assert_allclose(arr.get([1, np.arange(5)]), np.arange(5.0))

    def test_allocated_elements(self):
        arr = RuntimeArray.allocate(
            "A", RealType, [(1, 100), (0, 9)], windows={0: 3}
        )
        assert arr.allocated_elements == 30

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=10, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_window_equals_full_when_reads_within_window(self, w, n):
        """Writing planes in order and reading at most w-1 back gives the
        same values as a full array."""
        full = RuntimeArray.allocate("F", RealType, [(0, n)])
        win = RuntimeArray.allocate("W", RealType, [(0, n)], windows={0: w}, debug=True)
        rng = np.random.default_rng(n * w)
        for k in range(n + 1):
            v = float(rng.random())
            full.set([k], v)
            win.set([k], v)
            back = min(k, w - 1)
            for d in range(back + 1):
                assert win.get([k - d]) == full.get([k - d])
