"""Index-independent module calls compile into kernels.

A module call whose arguments never mention the equation's loop indices
evaluates to one value per invocation; binding the execution's ``call_fn``
through the kernel cache's call box lets such equations leave the
evaluator — and stops them from forcing their whole nest onto the
per-element fallback. Index-*dependent* calls still reject.
"""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.plan.planner import forced_plan
from repro.ps.parser import parse_module, parse_program
from repro.ps.semantics import analyze_module, analyze_program
from repro.runtime.executor import (
    ExecutionOptions,
    execute_module,
    execute_program_module,
)
from repro.runtime.kernels import KernelCache
from repro.runtime.kernels.emit import kernelizable, nest_fusable
from repro.schedule.scheduler import schedule_module

PROGRAM = """\
Offset: module (base: real): [y: real];
define
    y = base * 3.0 + 1.0;
end Offset;

Grid: module (A: array[1 .. n, 1 .. n] of real; base: real; n: int):
      [B: array[1 .. n, 1 .. n] of real];
type
    I = 1 .. n; J = 1 .. n;
define
    B[I, J] = A[I, J] + Offset(base);
end Grid;
"""

INDEXED_PROGRAM = """\
Offset: module (base: real): [y: real];
define
    y = base * 3.0 + 1.0;
end Offset;

Grid: module (A: array[1 .. n, 1 .. n] of real; n: int):
      [B: array[1 .. n, 1 .. n] of real];
type
    I = 1 .. n; J = 1 .. n;
define
    B[I, J] = A[I, J] + Offset(I * 1.0);
end Grid;
"""


def _program(source):
    program = analyze_program(parse_program(source))
    return program, program["Grid"]


class TestKernelizability:
    def test_index_independent_call_kernelizes(self):
        _, grid = _program(PROGRAM)
        eq = grid.equations[0]
        assert kernelizable(eq, grid)

    def test_index_dependent_call_rejected(self):
        _, grid = _program(INDEXED_PROGRAM)
        eq = grid.equations[0]
        assert not kernelizable(eq, grid)

    def test_call_nest_becomes_fusable(self):
        """The ROADMAP follow-up: module-call equations no longer force
        the whole nest onto the evaluator fallback."""
        _, grid = _program(PROGRAM)
        flow = schedule_module(grid)
        outer = next(d for d in flow.loops() if d.parallel)
        assert nest_fusable(outer, grid, flow, use_windows=False)

    def test_index_dependent_nest_still_unfusable(self):
        _, grid = _program(INDEXED_PROGRAM)
        flow = schedule_module(grid)
        outer = next(d for d in flow.loops() if d.parallel)
        assert not nest_fusable(outer, grid, flow, use_windows=False)


class TestExecutionParity:
    def _args(self, n=6):
        rng = np.random.default_rng(11)
        return {"A": rng.random((n, n)), "base": 0.5, "n": n}

    def _reference(self, program, args):
        return execute_program_module(
            program, "Grid", args,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]

    @pytest.mark.parametrize("backend", ["serial", "vectorized", "threaded"])
    def test_kernelized_call_parity(self, backend):
        program, _ = _program(PROGRAM)
        args = self._args()
        expected = self._reference(program, args)
        out = execute_program_module(
            program, "Grid", args,
            options=ExecutionOptions(backend=backend, workers=2),
        )["B"]
        assert np.array_equal(out, expected)

    def test_forced_nest_with_call_parity(self):
        program, grid = _program(PROGRAM)
        flow = schedule_module(grid)
        args = self._args()
        expected = self._reference(program, args)
        options = ExecutionOptions(backend="serial")
        plan = forced_plan(
            analyze_program(parse_program(PROGRAM))["Grid"], flow, "serial",
            options, {"n": 6}, default="nest",
        )
        out = execute_module(
            grid, args, flowchart=flow, options=options, program=program,
            plan=plan,
        )["B"]
        assert np.array_equal(out, expected)

    def test_forced_collapse_with_call_parity(self):
        program, grid = _program(PROGRAM)
        flow = schedule_module(grid)
        args = self._args()
        expected = self._reference(program, args)
        options = ExecutionOptions(backend="threaded", workers=2)
        plan = forced_plan(
            grid, flow, "threaded", options, {"n": 6}, default="collapse"
        )
        out = execute_module(
            grid, args, flowchart=flow, options=options, program=program,
            plan=plan,
        )["B"]
        assert np.array_equal(out, expected)

    def test_index_dependent_call_still_correct(self):
        program, _ = _program(INDEXED_PROGRAM)
        rng = np.random.default_rng(12)
        args = {"A": rng.random((5, 5)), "n": 5}
        expected = execute_program_module(
            program, "Grid", args,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]
        out = execute_program_module(
            program, "Grid", args,
            options=ExecutionOptions(backend="vectorized"),
        )["B"]
        assert np.array_equal(out, expected)


class TestCallBox:
    def test_unbound_box_raises_like_evaluator(self):
        """A kernel whose call box was never bound reports the same
        'no module-call handler' error the evaluator gives."""
        _, grid = _program(PROGRAM)
        flow = schedule_module(grid)
        cache = KernelCache(grid, flow)
        eq = grid.equations[0]
        kernel = cache.kernel_for(eq, vector=False, use_windows=False)
        assert kernel is not None
        from repro.runtime.values import RuntimeArray

        data = {
            "A": RuntimeArray.from_numpy(
                "A", np.zeros((3, 3)), [(1, 3), (1, 3)]
            ),
            "B": RuntimeArray.from_numpy(
                "B", np.zeros((3, 3)), [(1, 3), (1, 3)]
            ),
            "base": 0.5,
            "n": 3,
        }
        with pytest.raises(ExecutionError, match="no module-call handler"):
            kernel(data, {"I": 1, "J": 1})

    def test_module_without_calls_unaffected(self):
        src = """\
Plain: module (A: array[1 .. n] of real; n: int):
       [B: array[1 .. n] of real];
type
    I = 1 .. n;
define
    B[I] = A[I] * 2.0;
end Plain;
"""
        analyzed = analyze_module(parse_module(src))
        flow = schedule_module(analyzed)
        rng = np.random.default_rng(1)
        args = {"A": rng.random(8), "n": 8}
        ref = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]
        out = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial"),
        )["B"]
        assert np.array_equal(out, ref)
