"""Compiled-kernel parity: the kernel path == the evaluator path, bit for bit.

Every workload is executed with kernels enabled and disabled on every
backend, with and without window storage. Results must be *bit-exact*
(``np.array_equal``): the kernels emit the same operation sequence over the
same storage elements the evaluator touches, so even floating point agrees
exactly. Also covered: boundary ``if`` equations (lazy scalar semantics vs
``np.where`` clipping), the non-kernelizable fallback (module calls, atomic
equations stay on the evaluator), evaluation-count statistics, and the
per-compilation kernel cache.
"""

import numpy as np
import pytest

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.core.pipeline import compile_source
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module, parse_program
from repro.ps.semantics import analyze_module, analyze_program
from repro.runtime.executor import (
    ExecutionOptions,
    execute_module,
    execute_program_module,
)
from repro.runtime.kernels import (
    KernelCache,
    emit_kernel_source,
    kernelizable,
)
from repro.runtime.kernels.runtime import affine_gather, affine_scatter
from repro.runtime.values import RuntimeArray
from repro.schedule.scheduler import schedule_module

ALL_BACKENDS = ["serial", "vectorized", "threaded", "process", "process-fork"]

DP_SOURCE = """\
Align: module (CostA: array[1 .. n] of real;
               CostB: array[1 .. n] of real;
               gap: real; n: int):
       [score: real];
type
    I, J = 1 .. n;
var
    D: array [0 .. n, 0 .. n] of real;
define
    D[0] = 0.0;
    D[I, 0] = I * gap;
    D[I, J] = min(D[I-1, J-1] + abs(CostA[I] - CostB[J]),
                  min(D[I-1, J] + gap, D[I, J-1] + gap));
    score = D[n, n];
end Align;
"""

PATHS_INT_SOURCE = """\
Paths: module (n: int): [Y: array[0 .. n] of int];
type
    I = 1 .. n; J = 1 .. n;
var
    W: array [0 .. n, 0 .. n] of int;
define
    W[0] = 1;
    W[I, 0] = 1;
    W[I, J] = W[I-1, J] + W[I, J-1];
    Y = W[n];
end Paths;
"""

CALL_PROGRAM_SOURCE = """\
Scale: module (x: real): [y: real]; define y = x * 2.0; end Scale;
Use: module (A: array[1 .. n] of real; n: int): [B: array[1 .. n] of real];
type I = 1 .. n;
define B[I] = Scale(A[I]) + 1.0;
end Use;
"""


def _workloads():
    rng = np.random.default_rng(7)
    jac = jacobi_analyzed()
    yield (
        "jacobi",
        jac,
        schedule_module(jac),
        {"InitialA": rng.random((10, 10)), "M": 8, "maxK": 5},
        "newA",
    )
    gs = gauss_seidel_analyzed()
    yield (
        "gauss_seidel",
        gs,
        schedule_module(gs),
        {"InitialA": rng.random((8, 8)), "M": 6, "maxK": 4},
        "newA",
    )
    hgs = hyperplane_transform(gauss_seidel_analyzed()).transformed
    yield (
        "hyperplane_gs",
        hgs,
        schedule_module(hgs),
        {"InitialA": rng.random((8, 8)), "M": 6, "maxK": 4},
        "newA",
    )
    dp = analyze_module(parse_module(DP_SOURCE))
    yield (
        "dp",
        dp,
        schedule_module(dp),
        {"CostA": rng.random(9), "CostB": rng.random(9), "gap": 0.4, "n": 9},
        "score",
    )
    paths = analyze_module(parse_module(PATHS_INT_SOURCE))
    yield ("paths_int", paths, schedule_module(paths), {"n": 9}, "Y")


WORKLOADS = list(_workloads())


def _options(backend, kernels, use_windows=False):
    return ExecutionOptions(
        backend=backend,
        workers=4,
        use_kernels=kernels,
        use_windows=use_windows,
    )


class TestKernelParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("use_windows", [False, True])
    def test_bit_exact_on_every_workload(self, backend, use_windows):
        for name, analyzed, flow, args, result in WORKLOADS:
            expected = execute_module(
                analyzed, args, flowchart=flow,
                options=_options("serial", kernels=False, use_windows=use_windows),
            )[result]
            got = execute_module(
                analyzed, args, flowchart=flow,
                options=_options(backend, kernels=True, use_windows=use_windows),
            )[result]
            assert np.array_equal(got, expected), (name, backend, use_windows)

    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_boundary_if_semantics(self, backend):
        """The Jacobi boundary ``if`` reads out of range in its untaken
        branch: the scalar kernel must stay lazy (never touch it), the
        vector kernel must clip exactly like the ``np.where`` evaluator."""
        analyzed = jacobi_analyzed()
        rng = np.random.default_rng(3)
        args = {"InitialA": rng.random((12, 12)), "M": 10, "maxK": 6}
        off = execute_module(analyzed, args, options=_options(backend, False))
        on = execute_module(analyzed, args, options=_options(backend, True))
        assert np.array_equal(on["newA"], off["newA"])

    def test_out_of_range_error_parity(self):
        """An unguarded out-of-range subscript raises the evaluator's
        ExecutionError on the kernel path too (no silent negative-index
        wrap-around on the reference backend)."""
        from repro.errors import ExecutionError

        src = (
            "T: module (A: array[1 .. n] of real; n: int):"
            " [B: array[1 .. n] of real];\n"
            "type I = 1 .. n;\ndefine B[I] = A[I-1];\nend T;"
        )
        analyzed = analyze_module(parse_module(src))
        args = {"A": np.arange(1.0, 6.0), "n": 5}
        for kernels in (False, True):
            with pytest.raises(ExecutionError, match="out of range"):
                execute_module(
                    analyzed, args, options=_options("serial", kernels)
                )

    def test_eval_counts_match(self):
        """The kernels maintain the same per-equation statistics."""
        from repro.runtime.backends import create_backend
        from repro.runtime.backends.base import ExecutionState

        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        rng = np.random.default_rng(5)
        args = {"InitialA": rng.random((7, 7)), "M": 5, "maxK": 4}
        counts = {}
        for kernels in (False, True):
            from repro.runtime.evaluator import Evaluator

            opts = _options("vectorized", kernels)
            data = dict(args)
            data["InitialA"] = RuntimeArray.from_numpy(
                "InitialA", np.asarray(args["InitialA"]), [(0, 6), (0, 6)]
            )
            state = ExecutionState(
                analyzed, flow, opts, data, Evaluator(data),
                kernels=KernelCache(analyzed, flow) if kernels else None,
            )
            backend = create_backend(opts)
            try:
                backend.run(state)
            finally:
                backend.close()
            counts[kernels] = state.eval_counts
        assert counts[True] == counts[False]


class TestKernelizability:
    def test_paper_equations_are_kernelizable(self):
        analyzed = jacobi_analyzed()
        for eq in analyzed.equations:
            assert kernelizable(eq, analyzed)

    def test_module_calls_are_not(self):
        program = analyze_program(parse_program(CALL_PROGRAM_SOURCE))
        use = program["Use"]
        eq = use.equations[0]
        assert not kernelizable(eq, use)
        cache = KernelCache(use, schedule_module(use))
        assert cache.kernel_for(eq, vector=True, use_windows=False) is None

    def test_module_call_fallback_is_exact(self):
        """Non-kernelizable equations run on the evaluator and still agree."""
        program = analyze_program(parse_program(CALL_PROGRAM_SOURCE))
        rng = np.random.default_rng(11)
        args = {"A": rng.random(6), "n": 6}
        off = execute_program_module(
            program, "Use", args, options=_options("vectorized", False)
        )
        on = execute_program_module(
            program, "Use", args, options=_options("vectorized", True)
        )
        assert np.array_equal(on["B"], off["B"])

    def test_emitted_source_is_stable(self):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        eq = analyzed.equations[2]
        a, _ = emit_kernel_source(eq, analyzed, flow, vector=True, use_windows=False)
        b, _ = emit_kernel_source(eq, analyzed, flow, vector=True, use_windows=False)
        assert a == b
        assert "np.where" in a
        s, _ = emit_kernel_source(eq, analyzed, flow, vector=False, use_windows=False)
        assert " if " in s and "np.where" not in s  # lazy reference semantics


class TestKernelCache:
    def test_compile_result_reuses_cache(self):
        from repro.core.paper import RELAXATION_JACOBI_SOURCE

        result = compile_source(RELAXATION_JACOBI_SOURCE)
        rng = np.random.default_rng(2)
        args = {"InitialA": rng.random((6, 6)), "M": 4, "maxK": 3}
        r1 = result.run(args)
        stats = result.kernel_cache.stats()
        assert stats["compiled"] > 0
        r2 = result.run(args, backend="serial")
        # Same cache object, no growth beyond the two variants per equation.
        assert result.kernel_cache.stats()["entries"] >= stats["entries"]
        assert np.array_equal(r1["newA"], r2["newA"])

    def test_non_kernelizable_is_cached_as_none(self):
        program = analyze_program(parse_program(CALL_PROGRAM_SOURCE))
        use = program["Use"]
        cache = KernelCache(use, schedule_module(use))
        eq = use.equations[0]
        assert cache.kernel_for(eq, True, False) is None
        assert cache.kernel_for(eq, True, False) is None
        assert cache.stats() == {
            "entries": 1, "compiled": 0, "nests": 0, "native": 0,
        }

    def test_callee_runtime_is_memoized_across_calls(self):
        """Module calls reuse one schedule + kernel cache per callee —
        a per-element call must not re-schedule or re-compile anything."""
        program = analyze_program(parse_program(CALL_PROGRAM_SOURCE))
        rng = np.random.default_rng(4)
        args = {"A": rng.random(8), "n": 8}
        execute_program_module(
            program, "Use", args, options=_options("serial", True)
        )
        memo = program._runtime_memo
        entry = memo["Scale"]
        assert entry[1].stats()["compiled"] >= 1
        execute_program_module(
            program, "Use", args, options=_options("serial", True)
        )
        assert memo["Scale"] is entry  # same flowchart + cache, no rebuild

    def test_use_kernels_off_matches_default(self):
        analyzed = jacobi_analyzed()
        rng = np.random.default_rng(9)
        args = {"InitialA": rng.random((8, 8)), "M": 6, "maxK": 4}
        on = execute_module(analyzed, args, options=ExecutionOptions())
        off = execute_module(
            analyzed, args, options=ExecutionOptions(use_kernels=False)
        )
        assert np.array_equal(on["newA"], off["newA"])


class TestAffineHelpers:
    """The slice-based fast paths against the evaluator's own gather."""

    def test_gather_matches_clipped_get(self):
        rng = np.random.default_rng(0)
        dense = rng.random((5, 7))
        arr = RuntimeArray.from_numpy("A", dense, [(2, 6), (-3, 3)])
        i = np.arange(1, 8)[:, None]  # deliberately out of range both ends
        j = np.arange(-4, 3)
        expected = arr.get([np.clip(i, 2, 6), np.clip(j - 1, -3, 3)], clip=True)
        got = affine_gather(arr, ((i, 0), (j, -1)))
        assert np.array_equal(got, expected)
        assert got.shape == expected.shape

    def test_gather_scalar_axes(self):
        rng = np.random.default_rng(1)
        dense = rng.random((4, 6))
        arr = RuntimeArray.from_numpy("A", dense, [(0, 3), (0, 5)])
        j = np.arange(0, 6)
        expected = arr.get([2, j], clip=True)
        got = affine_gather(arr, ((2, 0), (j, 0)))
        assert np.array_equal(got, expected)

    def test_scatter_matches_set(self):
        rng = np.random.default_rng(2)
        a1 = RuntimeArray.from_numpy("A", np.zeros((4, 5)), [(1, 4), (0, 4)])
        a2 = RuntimeArray.from_numpy("A", np.zeros((4, 5)), [(1, 4), (0, 4)])
        i = np.arange(1, 5)[:, None]
        j = np.arange(0, 5)
        value = rng.random((4, 5))
        a1.set([i, j], value)
        affine_scatter(a2, ((i, 0), (j, 0)), value)
        assert np.array_equal(a1.storage, a2.storage)

    def test_scatter_out_of_range_raises(self):
        from repro.errors import ExecutionError

        arr = RuntimeArray.from_numpy("A", np.zeros((3,)), [(0, 2)])
        with pytest.raises(ExecutionError, match="out of range"):
            affine_scatter(arr, ((np.arange(0, 3), 1),), np.ones(3))
        with pytest.raises(ExecutionError, match="out of range"):
            affine_scatter(arr, ((5, 0),), 1.0)


class TestSharedLowering:
    def test_pygen_and_kernels_share_the_lowerer(self):
        """Both code paths must subclass the one expression walk."""
        from repro.codegen.exprlower import ExprLowerer
        from repro.codegen.pygen import _PygenLowerer
        from repro.runtime.kernels.emit import _ScalarLowerer, _VectorLowerer

        assert issubclass(_PygenLowerer, ExprLowerer)
        assert issubclass(_ScalarLowerer, ExprLowerer)
        assert issubclass(_VectorLowerer, ExprLowerer)
