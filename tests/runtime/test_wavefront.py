"""Tests for the windowed wavefront executor (the paper's preferred
rotate-in / work-transformed / unrotate code shape)."""

import numpy as np
import pytest

from repro.core.paper import gauss_seidel_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.runtime.executor import execute_module
from repro.runtime.wavefront import execute_transformed_windowed


@pytest.fixture(scope="module")
def hyper():
    return hyperplane_transform(gauss_seidel_analyzed())


class TestWindowedWavefront:
    @pytest.mark.parametrize("m,maxk", [(4, 3), (5, 5)])
    def test_matches_original(self, hyper, m, maxk):
        rng = np.random.default_rng(m + maxk)
        initial = rng.random((m + 2, m + 2))
        args = {"InitialA": initial, "M": m, "maxK": maxk}
        expected = execute_module(hyper.original, args)["newA"]
        report = execute_transformed_windowed(hyper, args)
        np.testing.assert_allclose(report.results["newA"], expected, rtol=1e-12)

    def test_window_is_three(self, hyper):
        m, maxk = 4, 4
        args = {"InitialA": np.ones((m + 2, m + 2)), "M": m, "maxK": maxk}
        report = execute_transformed_windowed(hyper, args)
        assert report.window == 3

    def test_allocation_is_three_planes(self, hyper):
        """Storage claim: 3 x maxK x (M+2) elements for the transformed
        array instead of (2maxK + 2M + 3) full planes."""
        m, maxk = 6, 9
        args = {"InitialA": np.ones((m + 2, m + 2)), "M": m, "maxK": maxk}
        report = execute_transformed_windowed(hyper, args)
        assert report.allocated_elements[hyper.new_array] == 3 * maxk * (m + 2)

    def test_debug_tags_stay_silent_on_valid_run(self, hyper):
        # debug=True arms the window tags; a valid fused execution never
        # reads an overwritten plane, so no exception may surface.
        m, maxk = 3, 4
        args = {
            "InitialA": np.arange((m + 2) * (m + 2), dtype=float).reshape(m + 2, m + 2),
            "M": m,
            "maxK": maxk,
        }
        report = execute_transformed_windowed(hyper, args, debug=True)
        assert report.results["newA"].shape == (m + 2, m + 2)

    def test_plane_count(self, hyper):
        m, maxk = 4, 5
        args = {"InitialA": np.ones((m + 2, m + 2)), "M": m, "maxK": maxk}
        report = execute_transformed_windowed(hyper, args)
        # Kp runs 2 .. 2maxK + 2(M+1).
        assert report.n_planes == 2 * maxk + 2 * (m + 1) - 2 + 1
