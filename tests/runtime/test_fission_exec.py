"""Fission execution: bit-exactness of split plans against the reference
evaluator on every backend in both window modes, property-based
equivalence over randomly generated programs, and the poison-protocol
regression (a mid-run failure inside one fissioned piece unwinds with the
original exception and leaves the pool usable)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.genprog import generate_program, program_args
from repro.core.recurrences import mixed_analyzed, mixed_args
from repro.graph.build import build_dependency_graph
from repro.runtime.backends.threaded import ThreadedBackend
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_module

ALL_BACKENDS = ("serial", "vectorized", "threaded", "free-threading", "process")


def _merged(analyzed):
    graph = build_dependency_graph(analyzed)
    return merge_loops(schedule_module(analyzed, graph), graph)


def _reference(analyzed, args, outs):
    res = execute_module(
        analyzed, args,
        options=ExecutionOptions(
            backend="serial", use_kernels=False, use_fission=False
        ),
    )
    return {k: np.asarray(res[k]) for k in outs}


def _backend_available(backend):
    if backend == "process":
        from repro.runtime.backends.process import _fork_available

        return _fork_available()
    return True


class TestFissionParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("use_windows", [False, True], ids=["flat", "win"])
    def test_forced_fission_bit_exact(self, backend, use_windows):
        if not _backend_available(backend):
            pytest.skip("fork unavailable")
        analyzed = mixed_analyzed()
        chart = _merged(analyzed)
        args = mixed_args(n=300)
        ref = _reference(analyzed, args, ("T", "S", "M"))
        res = execute_module(
            analyzed, args, flowchart=chart,
            options=ExecutionOptions(
                backend=backend, workers=4, strategy="fission",
                use_windows=use_windows,
            ),
        )
        for k, want in ref.items():
            assert np.array_equal(np.asarray(res[k]), want)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_auto_bit_exact(self, backend):
        # No force: whatever the pricing decides (threaded picks fission
        # on merit at this size, serial may not) must match the reference.
        if not _backend_available(backend):
            pytest.skip("fork unavailable")
        analyzed = mixed_analyzed()
        chart = _merged(analyzed)
        args = mixed_args(n=300)
        ref = _reference(analyzed, args, ("T", "S", "M"))
        res = execute_module(
            analyzed, args, flowchart=chart,
            options=ExecutionOptions(backend=backend, workers=4),
        )
        for k, want in ref.items():
            assert np.array_equal(np.asarray(res[k]), want)

    def test_no_fission_escape_hatch_bit_exact(self):
        analyzed = mixed_analyzed()
        chart = _merged(analyzed)
        args = mixed_args(n=300)
        ref = _reference(analyzed, args, ("T", "S", "M"))
        res = execute_module(
            analyzed, args, flowchart=chart,
            options=ExecutionOptions(
                backend="threaded", workers=4, use_fission=False
            ),
        )
        for k, want in ref.items():
            assert np.array_equal(np.asarray(res[k]), want)

    def test_eval_counts_match_the_unfissioned_walk(self):
        # Each equation lands in exactly one replica over the full
        # subrange, so element-evaluation statistics are identical.
        from repro.runtime.backends.base import ExecutionState
        from repro.runtime.backends.serial import SerialBackend
        from repro.runtime.evaluator import Evaluator
        from repro.runtime.values import RuntimeArray

        analyzed = mixed_analyzed()
        chart = _merged(analyzed)
        n = 50
        args = mixed_args(n=n)
        counts = {}
        for use_fission in (True, False):
            data = {"n": n}
            for k in ("X", "A", "B"):
                data[k] = RuntimeArray.from_numpy(
                    k, np.asarray(args[k]), [(1, n)]
                )
            options = ExecutionOptions(
                backend="serial", use_kernels=False, use_fission=use_fission,
                strategy="fission" if use_fission else None,
            )
            state = ExecutionState(
                analyzed, chart, options, data, Evaluator(data)
            )
            backend = SerialBackend()
            try:
                backend.run(state)
            finally:
                backend.close()
            counts[use_fission] = dict(state.eval_counts)
        assert counts[True] == counts[False]


class TestFissionProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=2, max_value=24),
    )
    def test_generated_programs_fissioned_equals_evaluator(self, seed, n):
        # Random unit mixes (maps, scans, linear recurrences, coupled
        # pairs; local targets may be windowed): a soft-forced fission
        # plan computes exactly what the scalar reference evaluator
        # computes, on every backend, in both window modes — whether the
        # split applies, is hazard-rejected, or does not exist.
        prog = generate_program(seed)
        analyzed = prog.analyzed()
        chart = _merged(analyzed)
        args = program_args(prog, n, seed)
        ref = _reference(analyzed, args, prog.outputs)
        for backend in ("serial", "vectorized", "threaded"):
            for use_windows in (False, True):
                res = execute_module(
                    analyzed, args, flowchart=chart,
                    options=ExecutionOptions(
                        backend=backend, workers=2, strategy="fission",
                        use_windows=use_windows,
                    ),
                )
                for k, want in ref.items():
                    assert np.array_equal(np.asarray(res[k]), want), (
                        f"{k} mismatch on {backend} "
                        f"(use_windows={use_windows})"
                    )

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_generated_programs_unfissioned_agrees(self, seed):
        # The escape hatch and the split must agree with each other too.
        prog = generate_program(seed)
        analyzed = prog.analyzed()
        chart = _merged(analyzed)
        args = program_args(prog, 16, seed)
        fissioned = execute_module(
            analyzed, args, flowchart=chart,
            options=ExecutionOptions(
                backend="threaded", workers=2, strategy="fission"
            ),
        )
        plain = execute_module(
            analyzed, args, flowchart=chart,
            options=ExecutionOptions(
                backend="threaded", workers=2, use_fission=False
            ),
        )
        for k in prog.outputs:
            assert np.array_equal(
                np.asarray(fissioned[k]), np.asarray(plain[k])
            )


class _ExplodingBackend(ThreadedBackend):
    """Raises inside the middle fissioned piece (the eq.5 replica)
    mid-run, exactly once — whichever strategy that replica planned."""

    name = "threaded"

    def __init__(self, workers=None):
        super().__init__(workers)
        self.armed = True

    def _explode(self, desc):
        if self.armed and desc.body and (
            getattr(desc.body[0], "label", "") == "eq.5"
        ):
            self.armed = False
            raise RuntimeError("fission piece exploded mid-run")

    def exec_seq_block(self, state, desc, lo, hi, env):
        if lo > 1:
            self._explode(desc)
        super().exec_seq_block(state, desc, lo, hi, env)

    def exec_scan_loop(self, state, desc, lo, hi, env):
        self._explode(desc)
        super().exec_scan_loop(state, desc, lo, hi, env)

    def exec_sequential_loop(self, state, desc, lo, hi, env, vector_names):
        self._explode(desc)
        super().exec_sequential_loop(state, desc, lo, hi, env, vector_names)


class TestFissionPoison:
    def test_piece_failure_leaves_the_pool_usable(self):
        # A failure inside one replica loop of a fissioned plan must
        # unwind with the original exception and leave the same backend
        # instance (and its pools) able to run the next execution
        # bit-exact — the pipeline poison protocol covers replica groups.
        analyzed = mixed_analyzed()
        chart = _merged(analyzed)
        args = mixed_args(n=2000)
        opts = ExecutionOptions(
            backend="threaded", workers=4, strategy="fission"
        )
        ref = _reference(analyzed, args, ("T", "S", "M"))
        backend = _ExplodingBackend(workers=4)
        try:
            with pytest.raises(RuntimeError, match="piece exploded mid-run"):
                execute_module(
                    analyzed, args, flowchart=chart, options=opts,
                    backend=backend,
                )
            res = execute_module(
                analyzed, args, flowchart=chart, options=opts,
                backend=backend,
            )
            for k, want in ref.items():
                assert np.array_equal(np.asarray(res[k]), want)
        finally:
            backend.close()
