"""Integration tests: executing scheduled PS modules."""

import numpy as np
import pytest

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.errors import ExecutionError
from repro.ps.parser import parse_module, parse_program
from repro.ps.semantics import analyze_module, analyze_program
from repro.runtime.executor import (
    ExecutionOptions,
    execute_module,
    execute_program_module,
)


def run(src, args, **opts):
    return execute_module(
        analyze_module(parse_module(src)), args, options=ExecutionOptions(**opts)
    )


def jacobi_reference(initial: np.ndarray, maxk: int) -> np.ndarray:
    """Direct NumPy implementation of the paper's Equation 1."""
    a = initial.copy()
    for _ in range(maxk - 1):
        nxt = a.copy()
        nxt[1:-1, 1:-1] = (
            a[1:-1, :-2] + a[:-2, 1:-1] + a[1:-1, 2:] + a[2:, 1:-1]
        ) / 4
        a = nxt
    return a


def gauss_seidel_reference(initial: np.ndarray, maxk: int) -> np.ndarray:
    """Direct implementation of the revised eq.3 (Equation 2): west and
    north from the current iteration."""
    a = initial.copy()
    m2 = a.shape[0]
    for _ in range(maxk - 1):
        nxt = a.copy()
        for i in range(1, m2 - 1):
            for j in range(1, m2 - 1):
                nxt[i, j] = (
                    nxt[i, j - 1] + nxt[i - 1, j] + a[i, j + 1] + a[i + 1, j]
                ) / 4
        a = nxt
    return a


class TestScalars:
    def test_simple_scalar_equation(self):
        out = run("T: module (x: int): [y: int];\ndefine y = x * 2 + 1;\nend T;", {"x": 5})
        assert out["y"] == 11

    def test_chained_scalars(self):
        out = run(
            "T: module (x: int): [y: int];\nvar a: int; b: int;\n"
            "define b = a * 2; a = x + 1; y = b;\nend T;",
            {"x": 3},
        )
        assert out["y"] == 8

    def test_if_expression(self):
        src = "T: module (x: int): [y: int];\ndefine y = if x > 0 then x else -x;\nend T;"
        assert run(src, {"x": -7})["y"] == 7
        assert run(src, {"x": 7})["y"] == 7

    def test_builtins(self):
        out = run(
            "T: module (x: real): [y: real];\ndefine y = sqrt(x) + abs(-2.0);\nend T;",
            {"x": 9.0},
        )
        assert out["y"] == pytest.approx(5.0)

    def test_division_real(self):
        out = run("T: module (x: int): [y: real];\ndefine y = x / 4;\nend T;", {"x": 1})
        assert out["y"] == pytest.approx(0.25)

    def test_missing_argument(self):
        with pytest.raises(ExecutionError, match="missing"):
            run("T: module (x: int): [y: int];\ndefine y = x;\nend T;", {})


class TestArrays:
    def test_elementwise_copy(self):
        out = run(
            "T: module (X: array[I] of real): [Y: array[I] of real];\n"
            "type I = 0 .. 4;\ndefine Y = X;\nend T;",
            {"X": np.arange(5.0)},
        )
        np.testing.assert_allclose(out["Y"], np.arange(5.0))

    def test_elementwise_arithmetic(self):
        out = run(
            "T: module (X: array[I] of real; Y: array[I] of real):\n"
            "  [S: array[I] of real];\n"
            "type I = 0 .. 3;\ndefine S = X * 2 + Y;\nend T;",
            {"X": np.ones(4), "Y": np.arange(4.0)},
        )
        np.testing.assert_allclose(out["S"], 2 + np.arange(4.0))

    def test_origin_offset_dimension(self):
        # Subrange 1..n: origin 1.
        out = run(
            "T: module (n: int): [Y: array[1 .. n] of real];\n"
            "type I = 1 .. n;\n"
            "define Y[I] = I * 1.0;\nend T;",
            {"n": 4},
        )
        np.testing.assert_allclose(out["Y"], [1.0, 2.0, 3.0, 4.0])

    def test_first_order_recurrence(self):
        out = run(
            "T: module (n: int; x0: real): [y: real];\n"
            "type I = 2 .. n;\n"
            "var F: array [1 .. n] of real;\n"
            "define F[1] = x0; F[I] = F[I-1] * 0.5; y = F[n];\nend T;",
            {"n": 5, "x0": 16.0},
        )
        assert out["y"] == pytest.approx(1.0)

    def test_fibonacci(self):
        out = run(
            "T: module (n: int): [y: int];\n"
            "type I = 3 .. n;\n"
            "var F: array [1 .. n] of int;\n"
            "define F[1] = 1; F[2] = 1; F[I] = F[I-1] + F[I-2]; y = F[n];\nend T;",
            {"n": 10},
        )
        assert out["y"] == 55

    def test_wavefront_recurrence(self):
        out = run(
            "T: module (n: int): [y: real];\n"
            "type I = 1 .. n; J = 1 .. n;\n"
            "var W: array [0 .. n, 0 .. n] of real;\n"
            "define W[0] = 1.0;\n"
            "W[I, 0] = 1.0;\n"
            "W[I, J] = W[I-1, J] + W[I, J-1];\n"
            "y = W[n, n];\nend T;",
            {"n": 4},
        )
        # W[n,n] = C(2n, n) = 70 for n=4.
        assert out["y"] == pytest.approx(70.0)


class TestPaperModules:
    @pytest.mark.parametrize("vectorize", [True, False])
    def test_jacobi_matches_reference(self, vectorize):
        rng = np.random.default_rng(42)
        m, maxk = 6, 5
        initial = rng.random((m + 2, m + 2))
        out = execute_module(
            jacobi_analyzed(),
            {"InitialA": initial, "M": m, "maxK": maxk},
            options=ExecutionOptions(vectorize=vectorize),
        )
        np.testing.assert_allclose(out["newA"], jacobi_reference(initial, maxk))

    @pytest.mark.parametrize("vectorize", [True, False])
    def test_gauss_seidel_matches_reference(self, vectorize):
        rng = np.random.default_rng(7)
        m, maxk = 5, 4
        initial = rng.random((m + 2, m + 2))
        out = execute_module(
            gauss_seidel_analyzed(),
            {"InitialA": initial, "M": m, "maxK": maxk},
            options=ExecutionOptions(vectorize=vectorize),
        )
        np.testing.assert_allclose(out["newA"], gauss_seidel_reference(initial, maxk))

    def test_vector_and_scalar_agree(self):
        rng = np.random.default_rng(3)
        m, maxk = 4, 6
        initial = rng.random((m + 2, m + 2))
        args = {"InitialA": initial, "M": m, "maxK": maxk}
        fast = execute_module(
            jacobi_analyzed(), args, options=ExecutionOptions(vectorize=True)
        )
        slow = execute_module(
            jacobi_analyzed(), args, options=ExecutionOptions(vectorize=False)
        )
        np.testing.assert_allclose(fast["newA"], slow["newA"])

    def test_boundary_carried_over(self):
        m, maxk = 4, 3
        initial = np.zeros((m + 2, m + 2))
        initial[0, :] = 9.0
        out = execute_module(
            jacobi_analyzed(), {"InitialA": initial, "M": m, "maxK": maxk}
        )
        np.testing.assert_allclose(out["newA"][0, :], 9.0)


class TestWindows:
    def test_jacobi_with_window_storage(self):
        rng = np.random.default_rng(5)
        m, maxk = 5, 6
        initial = rng.random((m + 2, m + 2))
        args = {"InitialA": initial, "M": m, "maxK": maxk}
        full = execute_module(jacobi_analyzed(), args)
        windowed = execute_module(
            jacobi_analyzed(),
            args,
            options=ExecutionOptions(use_windows=True, debug_windows=True),
        )
        np.testing.assert_allclose(windowed["newA"], full["newA"])

    def test_gauss_seidel_with_window_storage(self):
        rng = np.random.default_rng(6)
        m, maxk = 4, 5
        initial = rng.random((m + 2, m + 2))
        args = {"InitialA": initial, "M": m, "maxK": maxk}
        full = execute_module(gauss_seidel_analyzed(), args)
        windowed = execute_module(
            gauss_seidel_analyzed(),
            args,
            options=ExecutionOptions(use_windows=True, debug_windows=True),
        )
        np.testing.assert_allclose(windowed["newA"], full["newA"])

    def test_window_detects_bad_access(self):
        """Failure injection: a window of 2 cannot serve a read 3 planes
        back; the debug tags must fault rather than silently alias."""
        from repro.ps.parser import parse_module as pm
        from repro.ps.semantics import analyze_module as am
        from repro.schedule.scheduler import schedule_module

        analyzed = am(
            pm(
                "T: module (n: int): [y: real];\n"
                "type I = 4 .. n;\n"
                "var F: array [1 .. n] of real;\n"
                "define F[1] = 1.0; F[2] = 1.0; F[3] = 1.0;\n"
                "F[I] = F[I-1] + F[I-3]; y = F[n];\nend T;"
            )
        )
        flow = schedule_module(analyzed)
        # Sanity: the correct window is 4 (offsets {1,3}).
        assert flow.window_of("F") == {0: 4}
        # Sabotage the window to 2 and execute with debug tags armed.
        flow.windows["F"][0] = 2
        with pytest.raises(ExecutionError, match="window violation"):
            execute_module(
                analyzed,
                {"n": 8},
                flowchart=flow,
                options=ExecutionOptions(use_windows=True, debug_windows=True),
            )


class TestModuleCalls:
    def test_scalar_call(self):
        program = analyze_program(
            parse_program(
                "Inc: module (x: int): [y: int]; define y = x + 1; end Inc;\n"
                "Use: module (x: int): [y: int]; define y = Inc(Inc(x)); end Use;"
            )
        )
        out = execute_program_module(program, "Use", {"x": 5})
        assert out["y"] == 7

    def test_multi_result_call(self):
        program = analyze_program(
            parse_program(
                "DivMod: module (a: int; b: int): [q: int; r: int];\n"
                "define q = a div b; r = a mod b; end DivMod;\n"
                "Use: module (x: int): [s: int];\n"
                "var q: int; r: int;\n"
                "define q, r = DivMod(x, 3); s = q * 10 + r; end Use;"
            )
        )
        out = execute_program_module(program, "Use", {"x": 17})
        assert out["s"] == 52

    def test_array_result_call(self):
        program = analyze_program(
            parse_program(
                "Scale: module (X: array[I] of real; f: real):\n"
                "  [Y: array[I] of real];\n"
                "type I = 0 .. 3;\n"
                "define Y = X * f; end Scale;\n"
                "Use: module (X: array[I] of real): [Z: array[I] of real];\n"
                "type I = 0 .. 3;\n"
                "define Z = Scale(X, 2.0); end Use;"
            )
        )
        out = execute_program_module(program, "Use", {"X": np.arange(4.0)})
        np.testing.assert_allclose(out["Z"], np.arange(4.0) * 2)


class TestEnums:
    def test_enum_comparison(self):
        out = run(
            "T: module (c: int): [y: int];\n"
            "type Color = (red, green, blue);\n"
            "define y = if c = 1 then 10 else 20;\nend T;",
            {"c": 1},
        )
        assert out["y"] == 10


class TestRecords:
    def test_record_fields(self):
        out = run(
            "T: module (p: record x: real; y: real end): [d: real];\n"
            "define d = sqrt(p.x * p.x + p.y * p.y);\nend T;",
            {"p.x": 3.0, "p.y": 4.0},
        )
        assert out["d"] == pytest.approx(5.0)
