"""Native span-kernel parity and GIL-free threaded execution.

The span tier compiles one C function per (enclosing-chain, equation) pair
of a chunk-dispatchable DOALL subtree; the chunked backends call it for a
subrange instead of the per-equation NumPy spans. These tests pin:

* bit-exact parity — every paper workload, chunk-forced on every chunked
  backend (including ``free-threading``), in both window modes, against
  the kernel-less serial reference, on the native *and* NumPy tiers;
* the emission rules — one spec per equation, sequential inner ``DO``
  rejects the whole span (per-equation distribution would reorder its
  cross-iteration dependences), all-or-nothing on lowering failures;
* the cache contract — ``span_kernel_for`` memoizes, degrades to ``None``
  without a C toolchain, and ``warm()`` covers the span shapes;
* genuine parallelism — two threads make simultaneous progress inside one
  GIL-released native span kernel.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.plan.planner import forced_plan, valid_strategies
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.ps.types import RealType
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.kernels import KernelCache, native_supported
from repro.runtime.kernels import native as native_mod
from repro.runtime.values import RuntimeArray
from repro.schedule.flowchart import LoopDescriptor
from repro.schedule.scheduler import schedule_module

from tests.runtime.test_kernels import WORKLOADS

CHUNKED_BACKENDS = ["threaded", "free-threading", "process", "process-fork"]

needs_toolchain = pytest.mark.skipif(
    not native_supported(), reason="no C compiler / cffi on this machine"
)

#: a DOALL whose body is a sequential DO — the shape the span tier must
#: refuse (W[I, J] carries a cross-iteration dependence along J)
REC_SOURCE = """\
Rec: module (n: int): [Y: array[1 .. n] of int];
type
    I = 1 .. n; J = 1 .. n;
var
    W: array [1 .. n, 0 .. n] of int;
define
    W[I, 0] = 1;
    W[I, J] = W[I, J-1] + I;
    Y[I] = W[I, n];
end Rec;
"""

#: an arithmetic-heavy single-equation nest for the concurrency test —
#: enough C work per span call that thread overlap is measurable
HEAVY_SOURCE = """\
Heavy: module (n: int): [s: real];
type
    I = 1 .. n; J = 1 .. n;
var
    A: array [1 .. n, 1 .. n] of real;
define
    A[I, J] = ((I * 0.5 + J * 0.25) * (I * 0.125 + J * 0.0625)
               + (I - J) * (I + J) * 0.001
               + abs(I * 1.0 - J) * 0.01
               + min(I * 2.0, J * 3.0)) * 0.001;
    s = A[n, n];
end Heavy;
"""


@pytest.fixture(scope="module")
def span_cache(tmp_path_factory):
    """One on-disk cache for the whole module: each span kernel compiles
    once and later tests reload the memoized library."""
    d = tmp_path_factory.mktemp("native-span-cache")
    old = os.environ.get("REPRO_NATIVE_CACHE")
    os.environ["REPRO_NATIVE_CACHE"] = str(d)
    yield d
    if old is None:
        os.environ.pop("REPRO_NATIVE_CACHE", None)
    else:
        os.environ["REPRO_NATIVE_CACHE"] = old


def _chunk_forced_plan(analyzed, flow, backend, options, scalars):
    """Force ``chunk`` on every loop where it is valid (outermost wins) so
    the run exercises the span dispatch path regardless of what the
    cost-driven planner would pick at these tiny sizes."""
    overrides = {}

    def walk(path, descs):
        for i, d in enumerate(descs):
            p = path + (i,)
            if not isinstance(d, LoopDescriptor):
                continue
            if "chunk" in valid_strategies(
                analyzed, flow, d, options.use_windows
            ):
                overrides[p] = "chunk"
            else:
                walk(p, d.body)

    walk((), flow.descriptors)
    return forced_plan(
        analyzed, flow, backend, options, scalars, overrides=overrides
    )


def _scalars(args):
    return {k: int(v) for k, v in args.items() if isinstance(v, int)}


@needs_toolchain
class TestSpanParity:
    @pytest.mark.parametrize("use_windows", [False, True])
    @pytest.mark.parametrize("backend", CHUNKED_BACKENDS)
    @pytest.mark.parametrize(
        "workload", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_bit_exact_chunk_forced(
        self, workload, backend, use_windows, span_cache
    ):
        """Chunk-forced execution on the native tier == the kernel-less
        serial reference == the NumPy tier, bit for bit."""
        name, analyzed, flow, args, out = workload
        ref = execute_module(
            analyzed, dict(args), flow,
            ExecutionOptions(
                backend="serial", use_windows=use_windows, use_kernels=False
            ),
        )
        for tier in ("native", "numpy"):
            options = ExecutionOptions(
                backend=backend, workers=3, use_windows=use_windows,
                kernel_tier=tier,
            )
            plan = _chunk_forced_plan(
                analyzed, flow, backend, options, _scalars(args)
            )
            got = execute_module(
                analyzed, dict(args), flow, options, plan=plan
            )
            r, g = ref[out], got[out]
            if isinstance(r, np.ndarray):
                assert np.array_equal(r, g), (name, backend, tier)
            else:
                assert r == g, (name, backend, tier)

    def test_auto_plan_stays_bit_exact(self, span_cache):
        """The cost-driven plan (whatever it picks) matches the reference
        on the free-threading backend too."""
        name, analyzed, flow, args, out = WORKLOADS[0]
        ref = execute_module(
            analyzed, dict(args), flow,
            ExecutionOptions(backend="serial", use_kernels=False),
        )
        got = execute_module(
            analyzed, dict(args), flow,
            ExecutionOptions(backend="free-threading", workers=3),
        )
        assert np.array_equal(ref[out], got[out])


class TestSpanEmission:
    def test_one_spec_per_equation(self):
        """A two-deep DOALL nest with one equation lowers to one span
        spec whose root loop runs ``nlo .. nhi``."""
        name, analyzed, flow, args, out = WORKLOADS[0]  # jacobi
        outer = next(
            d for d in flow.descriptors
            if isinstance(d, LoopDescriptor) and d.parallel
        )
        specs = native_mod.emit_native_span_sources(
            outer, analyzed, flow, use_windows=False
        )
        assert len(specs) == len(outer.nested_equations()) == 1
        assert "nlo" in specs[0].source and "nhi" in specs[0].source

    def test_sequential_inner_do_rejects_span(self):
        """DOALL I ( DO J ( eq ) ): per-equation distribution across the
        sequential J loop would reorder its cross-iteration dependences —
        the whole span is non-emittable."""
        analyzed = analyze_module(parse_module(REC_SOURCE))
        flow = schedule_module(analyzed)
        loops = [
            d for d in flow.descriptors
            if isinstance(d, LoopDescriptor) and d.parallel
        ]
        rec = next(
            d for d in loops
            if any(
                isinstance(b, LoopDescriptor) and not b.parallel
                for b in d.body
            )
        )
        assert not native_mod.native_span_emittable(
            rec, analyzed, flow, use_windows=False
        )
        flat = [d for d in loops if d is not rec]
        assert flat and all(
            native_mod.native_span_emittable(d, analyzed, flow, False)
            for d in flat
        )

    def test_non_doall_root_rejected(self):
        from repro.runtime.kernels.emit import KernelError

        name, analyzed, flow, args, out = WORKLOADS[0]
        do_k = next(
            d for d in flow.descriptors
            if isinstance(d, LoopDescriptor) and not d.parallel
        )
        with pytest.raises(KernelError):
            native_mod.emit_native_span_sources(do_k, analyzed, flow, False)


class TestSpanCache:
    def test_span_kernel_memoized(self, span_cache):
        if not native_supported():
            pytest.skip("no C compiler / cffi on this machine")
        name, analyzed, flow, args, out = WORKLOADS[0]
        cache = KernelCache(analyzed, flow)
        outer = next(
            d for d in flow.descriptors
            if isinstance(d, LoopDescriptor) and d.parallel
        )
        k1 = cache.span_kernel_for(outer, False)
        assert k1 is not None and getattr(k1, "__native__", False)
        assert cache.span_kernel_for(outer, False) is k1

    def test_degrades_to_none_without_toolchain(self, monkeypatch):
        name, analyzed, flow, args, out = WORKLOADS[0]
        monkeypatch.setattr(native_mod, "native_supported", lambda: False)
        cache = KernelCache(analyzed, flow)
        outer = next(
            d for d in flow.descriptors
            if isinstance(d, LoopDescriptor) and d.parallel
        )
        assert cache.span_kernel_for(outer, False) is None

    @needs_toolchain
    def test_warm_covers_span_shapes(self, span_cache):
        """Session.warm()'s path — KernelCache.warm(tier="native") — must
        pre-compile the span kernels, not only the fused nests (the
        pool-inheritance and daemon warm paths rely on it)."""
        name, analyzed, flow, args, out = WORKLOADS[0]
        cache = KernelCache(analyzed, flow)
        cache.warm(use_windows=False, tier="native")
        spans = [
            key for key in cache._native
            if len(key) == 3 and key[2] == "span"
        ]
        assert spans, "warm() compiled no span kernels"
        assert all(cache._native[k] is not None for k in spans)


@needs_toolchain
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="needs at least two cores"
)
class TestGilRelease:
    def test_two_threads_progress_simultaneously(self, span_cache):
        """cffi's ABI mode releases the GIL around the C call: two threads
        running the same heavy span kernel must overlap, not serialize.
        A held GIL would make the pair take ~2x one call; overlapped
        execution stays well under that."""
        n = 2500
        analyzed = analyze_module(parse_module(HEAVY_SOURCE))
        flow = schedule_module(analyzed)
        outer = next(
            d for d in flow.descriptors
            if isinstance(d, LoopDescriptor) and d.parallel
        )
        kern = native_mod.compile_native_span(
            outer, analyzed, flow, use_windows=False
        )
        arr = RuntimeArray.allocate("A", RealType, [(1, n), (1, n)])
        data = {"A": arr, "n": n}
        kern(data, {}, 1, n)  # warm-up: dlopen + page-in

        def one_call():
            kern(data, {}, 1, n)

        single = min(_timed(one_call) for _ in range(3))
        # Retry a few times before failing: the comparison is physical,
        # not statistical, but a loaded CI box deserves a second chance.
        pairs = []
        for _ in range(3):
            start = threading.Barrier(2)

            def work():
                start.wait()
                one_call()

            threads = [threading.Thread(target=work) for _ in range(2)]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            pair = time.perf_counter() - t0
            pairs.append(pair)
            if pair < 1.6 * single:
                return
        pytest.fail(
            f"no overlap: one call {single:.4f}s, two concurrent calls "
            f"took {min(pairs):.4f}s (GIL apparently held)"
        )


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
