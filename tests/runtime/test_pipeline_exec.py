"""The decoupled pipeline engine: bit-exactness against the reference
evaluator, the inline fallback on backends without the engine, and the
all-or-nothing failure protocol (poisoned queues unwind with the original
exception and leave the pool usable)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recurrences import (
    RECURRENCE_WORKLOADS,
    coupled_analyzed,
    coupled_args,
    scan_analyzed,
    scan_args,
)
from repro.runtime.backends.threaded import ThreadedBackend
from repro.runtime.executor import ExecutionOptions, execute_module


def _reference(analyzed, args, out):
    res = execute_module(
        analyzed, args,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )
    return np.asarray(res[out])


class TestPipelineParity:
    @pytest.mark.parametrize(
        "workload", RECURRENCE_WORKLOADS, ids=[w[0] for w in RECURRENCE_WORKLOADS]
    )
    @pytest.mark.parametrize("backend", ["threaded", "free-threading"])
    @pytest.mark.parametrize("use_windows", [False, True], ids=["flat", "win"])
    def test_forced_pipeline_bit_exact(self, workload, backend, use_windows):
        name, analyzed_fn, args_fn, out = workload
        analyzed = analyzed_fn()
        args = args_fn()
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(
                backend=backend, workers=4, strategy="pipeline",
                use_windows=use_windows,
            ),
        )
        assert np.array_equal(
            np.asarray(res[out]), _reference(analyzed, args, out)
        )

    @pytest.mark.parametrize(
        "workload", RECURRENCE_WORKLOADS, ids=[w[0] for w in RECURRENCE_WORKLOADS]
    )
    def test_auto_threaded_bit_exact(self, workload):
        # No force: whatever the pricing decides (line_sweep pipelines on
        # merit, the others stay undecoupled) must match the reference.
        name, analyzed_fn, args_fn, out = workload
        analyzed = analyzed_fn()
        args = args_fn()
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(backend="threaded", workers=4),
        )
        assert np.array_equal(
            np.asarray(res[out]), _reference(analyzed, args, out)
        )

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_inline_fallback_backends_bit_exact(self, backend):
        # Backends without the decoupled engine run a forced pipeline plan
        # through the base in-order walk — same answers, no pool.
        if backend == "process":
            from repro.runtime.backends.process import _fork_available

            if not _fork_available():
                pytest.skip("fork unavailable")
        analyzed = coupled_analyzed()
        args = coupled_args()
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(
                backend=backend, workers=4, strategy="pipeline"
            ),
        )
        assert np.array_equal(
            np.asarray(res["R"]), _reference(analyzed, args, "R")
        )

    def test_eval_counts_survive_the_stage_merge(self):
        # Every stage worker runs on a forked substate; the engine must
        # merge their element-evaluation statistics back exactly once.
        from repro.runtime.backends.base import ExecutionState
        from repro.runtime.evaluator import Evaluator
        from repro.runtime.values import RuntimeArray
        from repro.schedule.scheduler import schedule_module

        analyzed = scan_analyzed()
        flowchart = schedule_module(analyzed)
        args = scan_args(n=64)
        data = {
            "n": 64,
            "a": args["a"],
            "X": RuntimeArray.from_numpy("X", np.asarray(args["X"]), [(1, 64)]),
        }
        options = ExecutionOptions(backend="threaded", workers=4,
                                   strategy="pipeline")
        state = ExecutionState(
            analyzed, flowchart, options, data, Evaluator(data)
        )
        backend = ThreadedBackend(workers=4)
        try:
            backend.run(state)
        finally:
            backend.close()
        assert state.eval_counts["eq.2"] == 64  # the sequential stage
        assert state.eval_counts["eq.3"] == 64  # the replicated stage

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_forced_pipeline_bit_exact(self, n, seed):
        # Any size (including trips below one block, and trips that leave
        # a ragged final block) and any input data: the decoupled engine
        # computes exactly what the scalar reference evaluator computes.
        analyzed = scan_analyzed()
        args = scan_args(n=n, seed=seed)
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(
                backend="threaded", workers=4, strategy="pipeline"
            ),
        )
        assert np.array_equal(
            np.asarray(res["Y"]), _reference(analyzed, args, "Y")
        )


class _ExplodingBackend(ThreadedBackend):
    """Raises inside a replicated-stage block mid-run — after at least one
    upstream block has been handed off — exactly once."""

    name = "threaded"

    def __init__(self, workers=None):
        super().__init__(workers)
        self.armed = True

    def exec_rep_block(self, state, desc, lo, hi, env):
        if self.armed and lo > 0:
            self.armed = False
            raise RuntimeError("stage exploded mid-run")
        super().exec_rep_block(state, desc, lo, hi, env)


class TestPipelinePoison:
    def test_stage_failure_unwinds_with_original_exception(self):
        analyzed = coupled_analyzed()
        args = coupled_args()
        opts = ExecutionOptions(backend="threaded", workers=4,
                                strategy="pipeline")
        backend = _ExplodingBackend(workers=4)
        try:
            with pytest.raises(RuntimeError, match="stage exploded mid-run"):
                execute_module(analyzed, args, options=opts, backend=backend)

            # The poison drained every stage; the same pool instance must
            # run the next execution cleanly, bit-exact.
            res = execute_module(analyzed, args, options=opts, backend=backend)
            assert np.array_equal(
                np.asarray(res["R"]), _reference(analyzed, args, "R")
            )
        finally:
            backend.close()
