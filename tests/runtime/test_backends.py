"""Backend parity: serial == vectorized == threaded == process.

Every workload is executed on the serial reference backend and on each of
the other backends (with enough workers to force real chunking), with and
without window storage. Integer results must be bit-exact; floating-point
results must agree to within a tight tolerance (element-wise expressions
evaluate the same tree per element, so they are in practice bit-exact too).
"""

import numpy as np
import pytest

import repro
from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.errors import ExecutionError
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.backends import (
    available_backends,
    create_backend,
    resolve_backend_name,
)
from repro.runtime.executor import ExecutionOptions, execute_module

PARALLEL_BACKENDS = ["vectorized", "threaded", "process"]

#: Needleman-Wunsch-style DP table (the wavefront example module).
DP_SOURCE = """\
Align: module (CostA: array[1 .. n] of real;
               CostB: array[1 .. n] of real;
               gap: real; n: int):
       [score: real];
type
    I, J = 1 .. n;
var
    D: array [0 .. n, 0 .. n] of real;
define
    D[0] = 0.0;
    D[I, 0] = I * gap;
    D[I, J] = min(D[I-1, J-1] + abs(CostA[I] - CostB[J]),
                  min(D[I-1, J] + gap, D[I, J-1] + gap));
    score = D[n, n];
end Align;
"""

#: Integer lattice-path counts: bit-exactness is meaningful here.
PATHS_INT_SOURCE = """\
Paths: module (n: int): [Y: array[0 .. n] of int];
type
    I = 1 .. n; J = 1 .. n;
var
    W: array [0 .. n, 0 .. n] of int;
define
    W[0] = 1;
    W[I, 0] = 1;
    W[I, J] = W[I-1, J] + W[I, J-1];
    Y = W[n];
end Paths;
"""


def options_for(backend: str, use_windows: bool = False) -> ExecutionOptions:
    return ExecutionOptions(
        backend=backend,
        workers=4,
        use_windows=use_windows,
        debug_windows=use_windows,
    )


class TestRegistry:
    def test_available_backends(self):
        assert available_backends() == [
            "free-threading", "process", "process-fork", "serial",
            "threaded", "vectorized",
        ]

    def test_auto_follows_vectorize_flag(self):
        assert resolve_backend_name(ExecutionOptions()) == "vectorized"
        assert resolve_backend_name(ExecutionOptions(vectorize=False)) == "serial"
        assert resolve_backend_name(ExecutionOptions(backend="threaded")) == "threaded"

    def test_unknown_backend_raises(self):
        with pytest.raises(ExecutionError, match="unknown execution backend"):
            create_backend(ExecutionOptions(backend="gpu"))

    def test_unknown_backend_raises_at_execution(self):
        with pytest.raises(ExecutionError, match="unknown execution backend"):
            execute_module(
                jacobi_analyzed(),
                {"InitialA": np.zeros((3, 3)), "M": 1, "maxK": 2},
                options=ExecutionOptions(backend="gpu"),
            )


class TestJacobiParity:
    """The quickstart workload: the paper's Figure-1 Relaxation module."""

    @pytest.fixture(scope="class")
    def setup(self):
        analyzed = jacobi_analyzed()
        m, maxk = 8, 6
        rng = np.random.default_rng(42)
        args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
        ref = execute_module(analyzed, args, options=options_for("serial"))
        return analyzed, args, ref

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("use_windows", [False, True])
    def test_matches_serial(self, setup, backend, use_windows):
        analyzed, args, ref = setup
        out = execute_module(
            analyzed, args, options=options_for(backend, use_windows)
        )
        np.testing.assert_allclose(
            out["newA"], ref["newA"], rtol=1e-12, atol=1e-12
        )

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_quickstart_pipeline_run(self, backend):
        """The compile-then-run path used by examples/quickstart.py."""
        result = repro.compile_source(repro.RELAXATION_JACOBI_SOURCE)
        m, maxk = 6, 5
        rng = np.random.default_rng(0)
        args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
        ref = result.run(args, backend="serial")
        out = result.run(args, backend=backend, workers=4)
        np.testing.assert_allclose(
            out["newA"], ref["newA"], rtol=1e-12, atol=1e-12
        )


class TestGaussSeidelParity:
    """The fully iterative Figure-7 schedule (no DOALLs to chunk) and its
    hyperplane-transformed wavefront variant."""

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("use_windows", [False, True])
    def test_naive_schedule(self, backend, use_windows):
        analyzed = gauss_seidel_analyzed()
        m, maxk = 5, 4
        rng = np.random.default_rng(7)
        args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
        ref = execute_module(analyzed, args, options=options_for("serial"))
        out = execute_module(
            analyzed, args, options=options_for(backend, use_windows)
        )
        np.testing.assert_allclose(
            out["newA"], ref["newA"], rtol=1e-12, atol=1e-12
        )

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_hyperplane_wavefronts(self, backend):
        """After the section-4 transformation the schedule has real DOALL
        wavefronts; every backend must agree on them."""
        res = hyperplane_transform(gauss_seidel_analyzed())
        m, maxk = 6, 5
        rng = np.random.default_rng(3)
        args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
        ref = execute_module(res.transformed, args, options=options_for("serial"))
        out = execute_module(res.transformed, args, options=options_for(backend))
        np.testing.assert_allclose(
            out["newA"], ref["newA"], rtol=1e-12, atol=1e-12
        )


class TestWavefrontDPParity:
    """The wavefront example module (Needleman-Wunsch DP)."""

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_dp_score(self, backend):
        analyzed = analyze_module(parse_module(DP_SOURCE))
        rng = np.random.default_rng(11)
        n = 10
        args = {
            "CostA": rng.random(n),
            "CostB": rng.random(n),
            "gap": 0.45,
            "n": n,
        }
        ref = execute_module(analyzed, args, options=options_for("serial"))
        out = execute_module(analyzed, args, options=options_for(backend))
        assert out["score"] == pytest.approx(ref["score"], abs=1e-12)


class TestIntegerBitExact:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_lattice_paths_bit_exact(self, backend):
        analyzed = analyze_module(parse_module(PATHS_INT_SOURCE))
        ref = execute_module(analyzed, {"n": 12}, options=options_for("serial"))
        out = execute_module(analyzed, {"n": 12}, options=options_for(backend))
        assert out["Y"].dtype == ref["Y"].dtype == np.int64
        np.testing.assert_array_equal(out["Y"], ref["Y"])
        # C(24, 12) — the recurrence really ran.
        assert out["Y"][-1] == 2704156


class TestChunkedExecution:
    """The chunked backends must agree with serial whatever the worker
    count, including degenerate splits (more workers than iterations)."""

    @pytest.mark.parametrize("backend", ["threaded", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 3, 16])
    def test_worker_counts(self, backend, workers):
        analyzed = jacobi_analyzed()
        m, maxk = 6, 4
        rng = np.random.default_rng(1)
        args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
        ref = execute_module(analyzed, args, options=options_for("serial"))
        out = execute_module(
            analyzed,
            args,
            options=ExecutionOptions(backend=backend, workers=workers),
        )
        np.testing.assert_allclose(
            out["newA"], ref["newA"], rtol=1e-12, atol=1e-12
        )

    def test_eval_counts_preserved_across_chunks(self):
        """Worker chunks report their element-evaluation statistics back."""
        from repro.runtime.backends.base import ExecutionState
        from repro.runtime.backends.threaded import ThreadedBackend
        from repro.runtime.evaluator import Evaluator
        from repro.schedule.scheduler import schedule_module

        analyzed = jacobi_analyzed()
        flowchart = schedule_module(analyzed)
        m, maxk = 6, 4
        rng = np.random.default_rng(2)
        initial = rng.random((m + 2, m + 2))
        from repro.runtime.values import RuntimeArray

        data = {
            "M": m,
            "maxK": maxk,
            "InitialA": RuntimeArray.from_numpy(
                "InitialA", initial, [(0, m + 1), (0, m + 1)]
            ),
        }
        options = ExecutionOptions(backend="threaded", workers=4)
        state = ExecutionState(
            analyzed, flowchart, options, data, Evaluator(data)
        )
        backend = ThreadedBackend(workers=4)
        try:
            backend.run(state)
        finally:
            backend.close()
        # eq.3 evaluates every grid point of every iteration exactly once.
        assert state.eval_counts["eq.3"] == (maxk - 1) * (m + 2) * (m + 2)
