"""The three-phase scan engine at run time: bit-exactness for int and
min/max scans against the kernel-less reference evaluator, the in-order
fallback on backends without the engine, float gating behind
``allow_reassoc``, and the all-or-nothing failure protocol (a worker
failing mid-phase unwinds with the original exception and leaves the
pool usable — the same contract as the pipeline engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recurrences import (
    RECURRENCE_WORKLOADS,
    ilinrec_analyzed,
    ilinrec_args,
    isum_analyzed,
    isum_args,
)
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.backends.threaded import ThreadedBackend
from repro.runtime.executor import ExecutionOptions, execute_module

SCAN_WORKLOADS = [w for w in RECURRENCE_WORKLOADS
                  if w[0] in ("isum", "runmax", "ilinrec")]

FSUM_SOURCE = """\
FSum: module (X: array[1 .. n] of real; n: int):
      [S: array[0 .. n] of real];
type
    I = 1 .. n;
define
    S[0] = 0.0;
    S[I] = S[I-1] + X[I];
end FSum;
"""


def _reference(analyzed, args, out):
    res = execute_module(
        analyzed, args,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )
    return np.asarray(res[out])


class TestScanParity:
    @pytest.mark.parametrize(
        "workload", SCAN_WORKLOADS, ids=[w[0] for w in SCAN_WORKLOADS]
    )
    @pytest.mark.parametrize("backend", ["threaded", "free-threading"])
    @pytest.mark.parametrize("use_windows", [False, True], ids=["flat", "win"])
    def test_forced_scan_bit_exact(self, workload, backend, use_windows):
        name, analyzed_fn, args_fn, out = workload
        analyzed = analyzed_fn()
        args = args_fn(n=3000)
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(
                backend=backend, workers=4, strategy="scan",
                use_windows=use_windows,
            ),
        )
        assert np.array_equal(
            np.asarray(res[out]), _reference(analyzed, args, out)
        )

    @pytest.mark.parametrize(
        "workload", SCAN_WORKLOADS, ids=[w[0] for w in SCAN_WORKLOADS]
    )
    def test_auto_threaded_bit_exact(self, workload):
        # No force: at n=3000 the pricing picks scan by itself (pinned in
        # tests/plan/test_scan_plan.py); whatever it picks must match.
        name, analyzed_fn, args_fn, out = workload
        analyzed = analyzed_fn()
        args = args_fn(n=3000)
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(backend="threaded", workers=4),
        )
        assert np.array_equal(
            np.asarray(res[out]), _reference(analyzed, args, out)
        )

    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_inline_fallback_backends_bit_exact(self, backend):
        # Backends without the scan engine run a forced scan preference
        # through the base in-order walk — same answers, no pool.
        analyzed = ilinrec_analyzed()
        args = ilinrec_args(n=500)
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(
                backend=backend, workers=4, strategy="scan"
            ),
        )
        assert np.array_equal(
            np.asarray(res["S"]), _reference(analyzed, args, "S")
        )

    def test_numpy_tier_bit_exact(self):
        # kernel_tier="numpy" skips the C library: the ufunc-accumulate /
        # NumPy-scalar bundle must produce the same bits.
        analyzed = isum_analyzed()
        args = isum_args(n=3000)
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(
                backend="threaded", workers=4, strategy="scan",
                kernel_tier="numpy",
            ),
        )
        assert np.array_equal(
            np.asarray(res["T"]), _reference(analyzed, args, "T")
        )

    def test_eval_counts_cover_the_swept_range(self):
        from repro.runtime.backends.base import ExecutionState
        from repro.runtime.evaluator import Evaluator
        from repro.runtime.values import RuntimeArray
        from repro.schedule.scheduler import schedule_module

        analyzed = isum_analyzed()
        flowchart = schedule_module(analyzed)
        n = 3000
        args = isum_args(n=n)
        data = {
            "n": n,
            "X": RuntimeArray.from_numpy("X", np.asarray(args["X"]), [(1, n)]),
        }
        options = ExecutionOptions(backend="threaded", workers=4,
                                   strategy="scan")
        state = ExecutionState(
            analyzed, flowchart, options, data, Evaluator(data)
        )
        backend = ThreadedBackend(workers=4)
        try:
            backend.run(state)
        finally:
            backend.close()
        assert state.eval_counts["eq.2"] == n


class TestFloatGating:
    def test_float_sum_stays_in_order_by_default(self):
        # Soft-forcing scan on a float + recurrence without allow_reassoc
        # degrades to the serial in-order plan — bit-exact, no surprise
        # reassociation.
        analyzed = analyze_module(parse_module(FSUM_SOURCE))
        args = {"X": np.random.default_rng(7).random(3000), "n": 3000}
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(
                backend="threaded", workers=4, strategy="scan"
            ),
        )
        assert np.array_equal(
            np.asarray(res["S"]), _reference(analyzed, args, "S")
        )

    def test_float_sum_parallelizes_under_allow_reassoc(self):
        analyzed = analyze_module(parse_module(FSUM_SOURCE))
        n = 3000
        args = {"X": np.random.default_rng(7).random(n), "n": n}
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(
                backend="threaded", workers=4, strategy="scan",
                allow_reassoc=True,
            ),
        )
        # Documented tolerance: reassociating a float sum perturbs rounding
        # by O(eps * n) relative — far inside 1e-8 at this size.
        assert np.allclose(
            np.asarray(res["S"]), _reference(analyzed, args, "S"),
            rtol=1e-8, atol=0,
        )

    def test_hard_forced_float_scan_raises_without_optin(self):
        from repro.plan.ir import PlanError
        from repro.plan.planner import forced_plan
        from repro.schedule.scheduler import schedule_module

        analyzed = analyze_module(parse_module(FSUM_SOURCE))
        flow = schedule_module(analyzed)
        with pytest.raises(PlanError, match="allow-reassoc"):
            forced_plan(
                analyzed, flow, "threaded",
                ExecutionOptions(workers=4), {"n": 3000}, default="scan",
            )


class _ExplodingScanBackend(ThreadedBackend):
    """Raises inside one fix-up block of phase 3 — after the block sweep
    and the carry pass completed — exactly once."""

    name = "threaded"

    def __init__(self, workers=None):
        super().__init__(workers)
        self.armed = True

    def exec_scan_fix(self, kern, t, incoming, ap=None):
        if self.armed:
            self.armed = False
            raise RuntimeError("scan worker exploded mid-phase")
        super().exec_scan_fix(kern, t, incoming, ap)


class TestScanPoison:
    def test_worker_failure_unwinds_with_original_exception(self):
        analyzed = ilinrec_analyzed()
        args = ilinrec_args(n=3000)
        opts = ExecutionOptions(backend="threaded", workers=4,
                                strategy="scan")
        backend = _ExplodingScanBackend(workers=4)
        try:
            with pytest.raises(RuntimeError, match="exploded mid-phase"):
                execute_module(analyzed, args, options=opts, backend=backend)

            # All-or-nothing: every phase task was joined before the raise,
            # so the same pool instance must run cleanly now, bit-exact.
            res = execute_module(analyzed, args, options=opts, backend=backend)
            assert np.array_equal(
                np.asarray(res["S"]), _reference(analyzed, args, "S")
            )
        finally:
            backend.close()


class TestScanProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
        workload=st.sampled_from(["isum", "runmax", "ilinrec"]),
    )
    def test_property_forced_scan_bit_exact(self, n, seed, workload):
        # Any size (including trips below one block per worker, and trips
        # that leave a ragged final block) and any input data: the blocked
        # engine computes exactly what the scalar reference computes.
        table = {w[0]: w for w in SCAN_WORKLOADS}
        _, analyzed_fn, args_fn, out = table[workload]
        analyzed = analyzed_fn()
        args = args_fn(n=n, seed=seed)
        res = execute_module(
            analyzed, args,
            options=ExecutionOptions(
                backend="threaded", workers=4, strategy="scan"
            ),
        )
        assert np.array_equal(
            np.asarray(res[out]), _reference(analyzed, args, out)
        )
