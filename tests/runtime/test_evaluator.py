"""Unit tests for the expression evaluator (scalar and vector modes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.ps.parser import parse_expression
from repro.ps.types import RealType
from repro.runtime.evaluator import Evaluator
from repro.runtime.values import RuntimeArray


def ev(data=None, **kwargs):
    return Evaluator(data or {}, **kwargs)


class TestScalarMode:
    def test_arithmetic(self):
        e = ev()
        env = {"x": 3, "y": 4}
        assert e.eval(parse_expression("x * y + 1"), env) == 13

    def test_division(self):
        assert ev().eval(parse_expression("x / 4"), {"x": 1}) == 0.25

    def test_div_mod(self):
        assert ev().eval(parse_expression("x div 4"), {"x": 9}) == 2
        assert ev().eval(parse_expression("x mod 4"), {"x": 9}) == 1

    def test_comparisons(self):
        e = ev()
        assert e.eval(parse_expression("x < 5"), {"x": 3}) is True
        assert e.eval(parse_expression("x >= 5"), {"x": 3}) is False
        assert e.eval(parse_expression("x <> 3"), {"x": 3}) is False

    def test_short_circuit_and(self):
        # Lazy: the right side (division by zero) is never evaluated.
        e = ev()
        result = e.eval(parse_expression("false and (1 div 0 = 0)"), {})
        assert result is False

    def test_short_circuit_or(self):
        e = ev()
        assert e.eval(parse_expression("true or (1 div 0 = 0)"), {}) is True

    def test_lazy_if_skips_untaken_branch(self):
        arr = RuntimeArray.allocate("A", RealType, [(0, 3)])
        e = ev({"A": arr})
        # A[-1] is out of range but the condition guards it.
        value = e.eval(parse_expression("if x > 0 then A[x-1] else 0.0"), {"x": 0})
        assert value == 0.0

    def test_unbound_name(self):
        with pytest.raises(ExecutionError, match="unbound"):
            ev().eval(parse_expression("nothing"), {})

    def test_builtins(self):
        e = ev()
        assert e.eval(parse_expression("max(min(5, 3), 1)"), {}) == 3
        assert e.eval(parse_expression("sqrt(16.0)"), {}) == pytest.approx(4.0)
        assert e.eval(parse_expression("floor(2.9)"), {}) == 2

    def test_not(self):
        assert ev().eval(parse_expression("not (1 = 2)"), {}) is True

    def test_enum_members(self):
        e = ev(enums={"red": 0, "blue": 2})
        assert e.eval(parse_expression("blue"), {}) == 2

    def test_record_field_dotted(self):
        e = ev({"p.x": 1.5})
        assert e.eval(parse_expression("p.x * 2"), {}) == 3.0

    def test_record_field_nested_dict(self):
        e = ev({"p": {"x": 2.0}})
        assert e.eval(parse_expression("p.x"), {}) == 2.0


class TestVectorMode:
    def test_broadcast_arithmetic(self):
        e = ev()
        env = {"I": np.arange(4)}
        out = e.eval(parse_expression("I * 2 + 1"), env, vector=True)
        np.testing.assert_array_equal(out, [1, 3, 5, 7])

    def test_where_if(self):
        e = ev()
        env = {"I": np.arange(6)}
        out = e.eval(
            parse_expression("if I < 3 then 0 else 1"), env, vector=True
        )
        np.testing.assert_array_equal(out, [0, 0, 0, 1, 1, 1])

    def test_clipped_array_reads(self):
        arr = RuntimeArray.allocate("A", RealType, [(0, 3)])
        arr.set([np.arange(4)], np.array([10.0, 11.0, 12.0, 13.0]))
        e = ev({"A": arr})
        env = {"I": np.arange(4)}
        # A[I-1] at I=0 would be out of range; vector mode clips (the lane
        # is discarded by the guarding where in real programs).
        out = e.eval(
            parse_expression("if I > 0 then A[I-1] else 0.0"), env, vector=True
        )
        np.testing.assert_allclose(out, [0.0, 10.0, 11.0, 12.0])

    def test_two_axis_broadcast(self):
        e = ev()
        env = {"I": np.arange(3)[:, None], "J": np.arange(4)}
        out = e.eval(parse_expression("I * 10 + J"), env, vector=True)
        assert out.shape == (3, 4)
        assert out[2, 3] == 23

    def test_logical_ops_vectorised(self):
        e = ev()
        env = {"I": np.arange(5)}
        out = e.eval(
            parse_expression("(I = 0) or (I = 4)"), env, vector=True
        )
        np.testing.assert_array_equal(out, [True, False, False, False, True])

    def test_scalar_vector_agreement_random(self):
        rng = np.random.default_rng(0)
        arr = RuntimeArray.allocate("A", RealType, [(0, 9)])
        arr.set([np.arange(10)], rng.random(10))
        e = ev({"A": arr, "M": 9})
        expr = parse_expression(
            "if (I = 0) or (I = M) then A[I] else (A[I-1] + A[I+1]) / 2"
        )
        vec = e.eval(expr, {"I": np.arange(10)}, vector=True)
        for i in range(10):
            assert vec[i] == pytest.approx(e.eval(expr, {"I": i}))


class TestAgainstPython:
    @given(
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_arithmetic_matches_python(self, x, y, z):
        e = ev()
        env = {"x": x, "y": y, "z": z}
        got = e.eval(parse_expression("(x + y) * z - x"), env)
        assert got == (x + y) * z - x

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_conditional_matches_python(self, x):
        e = ev()
        got = e.eval(parse_expression("if x mod 2 = 0 then x div 2 else 3 * x + 1"), {"x": x})
        assert got == (x // 2 if x % 2 == 0 else 3 * x + 1)
