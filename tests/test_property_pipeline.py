"""End-to-end property tests over randomly generated PS programs.

These are the strongest guarantees in the suite:

* for random constant-offset stencil modules, the vectorised executor, the
  scalar reference executor, and the generated Python code all compute the
  same values;
* when the hyperplane transformation applies, the transformed module
  computes exactly what the original does;
* schedules are always valid (no read-before-write), already covered in
  tests/analysis, here re-checked through execution equality.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.pygen import compile_python
from repro.errors import CodegenError, ScheduleError, TransformError
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions, execute_module

# Strictly-past neighbour offsets for a 2-D recurrence (lexicographically
# positive dependences, so a schedule always exists).
_OFFSETS = [(-1, 0), (0, -1), (-1, -1), (-1, 1), (-2, 0), (0, -2), (-2, 1)]


@st.composite
def stencil_case(draw):
    offsets = draw(
        st.lists(st.sampled_from(_OFFSETS), min_size=1, max_size=4, unique=True)
    )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=len(offsets),
            max_size=len(offsets),
        )
    )
    n = draw(st.integers(min_value=4, max_value=8))
    terms = " + ".join(
        f"{w} * G[R{di:+d}, C{dj:+d}]"
        .replace("+0]", "]").replace("-0]", "]")
        .replace("R+0", "R").replace("C+0", "C")
        for w, (di, dj) in zip(weights, offsets)
    )
    back_r = max(-di for di, _ in offsets)
    back_c = max(abs(dj) for _, dj in offsets)
    total = sum(weights)
    src = (
        "T: module (n: int; Seed: array[0 .. n] of real): [Out: array[0 .. n] of real];\n"
        "type R = 0 .. n; C = 0 .. n;\n"
        "var G: array [0 .. n, 0 .. n] of real;\n"
        "define\n"
        f"G[R, C] = if (R < {back_r}) or (C < {back_c}) or (C > n - {back_c})\n"
        f"          then Seed[C] + R\n"
        f"          else ({terms}) / {total};\n"
        "Out[C] = G[n, C];\nend T;"
    )
    return src, n


class TestExecutionAgreement:
    @given(stencil_case())
    @settings(max_examples=25, deadline=None)
    def test_vectorised_equals_scalar(self, case):
        src, n = case
        analyzed = analyze_module(parse_module(src))
        try:
            rng = np.random.default_rng(n)
            args = {"n": n, "Seed": rng.random(n + 1)}
            fast = execute_module(
                analyzed, args, options=ExecutionOptions(vectorize=True)
            )
            slow = execute_module(
                analyzed, args, options=ExecutionOptions(vectorize=False)
            )
        except ScheduleError:
            return
        np.testing.assert_allclose(fast["Out"], slow["Out"], rtol=1e-10)

    @given(stencil_case())
    @settings(max_examples=15, deadline=None)
    def test_generated_python_equals_interpreter(self, case):
        src, n = case
        analyzed = analyze_module(parse_module(src))
        try:
            fn = compile_python(analyzed)
        except (ScheduleError, CodegenError):
            return
        rng = np.random.default_rng(n + 1)
        seed = rng.random(n + 1)
        expected = execute_module(analyzed, {"n": n, "Seed": seed})["Out"]
        np.testing.assert_allclose(fn(n, seed), expected, rtol=1e-10)

    @given(stencil_case())
    @settings(max_examples=15, deadline=None)
    def test_windowed_execution_equals_full(self, case):
        src, n = case
        analyzed = analyze_module(parse_module(src))
        try:
            rng = np.random.default_rng(n + 2)
            args = {"n": n, "Seed": rng.random(n + 1)}
            full = execute_module(analyzed, args)
            windowed = execute_module(
                analyzed,
                args,
                options=ExecutionOptions(use_windows=True, debug_windows=True),
            )
        except ScheduleError:
            return
        np.testing.assert_allclose(windowed["Out"], full["Out"], rtol=1e-10)


class TestHyperplaneEquivalence:
    @given(stencil_case())
    @settings(max_examples=15, deadline=None)
    def test_transformed_module_is_same_function(self, case):
        src, n = case
        analyzed = analyze_module(parse_module(src))
        try:
            res = hyperplane_transform(analyzed, array="G")
        except (TransformError, ScheduleError):
            return
        rng = np.random.default_rng(n + 3)
        args = {"n": n, "Seed": rng.random(n + 1)}
        expected = execute_module(analyzed, args)["Out"]
        got = execute_module(res.transformed, args)["Out"]
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    @given(stencil_case())
    @settings(max_examples=10, deadline=None)
    def test_transformed_schedule_has_single_do(self, case):
        src, n = case
        analyzed = analyze_module(parse_module(src))
        try:
            res = hyperplane_transform(analyzed, array="G")
        except (TransformError, ScheduleError):
            return
        kinds = res.transformed_flowchart.loop_kinds()
        do_loops = [idx for kw, idx in kinds if kw == "DO"]
        # Exactly one iterative loop: the time dimension.
        assert len(do_loops) == 1

    @given(stencil_case())
    @settings(max_examples=10, deadline=None)
    def test_time_vector_satisfies_dependences(self, case):
        src, n = case
        analyzed = analyze_module(parse_module(src))
        try:
            res = hyperplane_transform(analyzed, array="G")
        except (TransformError, ScheduleError):
            return
        for v in res.dependences.vectors:
            assert sum(p * d for p, d in zip(res.pi, v)) >= 1
