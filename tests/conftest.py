"""Suite-wide fixtures."""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_native_cache(tmp_path_factory):
    """Point the native kernel tier's on-disk artifact cache at a
    session-private directory: the suite must not write ``.c``/``.so``
    files into the developer's real ``~/.cache/repro/native``, and no test
    may dlopen a stale artifact left there by an earlier checkout (the
    cache is keyed by source hash, so corruption would be invisible).
    Tests that probe the cache itself override the variable per test."""
    import os

    path = tmp_path_factory.mktemp("native-cache")
    old = os.environ.get("REPRO_NATIVE_CACHE")
    os.environ["REPRO_NATIVE_CACHE"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_NATIVE_CACHE", None)
    else:
        os.environ["REPRO_NATIVE_CACHE"] = old
