"""Tests for the MSCC machinery, including a hypothesis comparison against
networkx on random directed multigraphs."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.graph.build import build_dependency_graph
from repro.graph.depgraph import DependencyGraph, Node, NodeKind
from repro.graph.scc import condensation_order, strongly_connected_components


def _make_graph(n_nodes: int, edges: list[tuple[int, int]]) -> DependencyGraph:
    g = DependencyGraph()
    for i in range(n_nodes):
        g.add_node(Node(f"n{i}", NodeKind.DATA, [], (0, i)))
    for a, b in edges:
        g.add_edge(f"n{a}", f"n{b}")
    return g


class TestTarjanBasics:
    def test_empty_like_graph(self):
        g = _make_graph(1, [])
        assert strongly_connected_components(g.full_view()) == [frozenset({"n0"})]

    def test_two_node_cycle(self):
        g = _make_graph(2, [(0, 1), (1, 0)])
        comps = strongly_connected_components(g.full_view())
        assert comps == [frozenset({"n0", "n1"})]

    def test_chain_has_singletons(self):
        g = _make_graph(3, [(0, 1), (1, 2)])
        comps = strongly_connected_components(g.full_view())
        assert len(comps) == 3

    def test_self_loop_single_component(self):
        g = _make_graph(1, [(0, 0)])
        comps = strongly_connected_components(g.full_view())
        assert comps == [frozenset({"n0"})]

    def test_two_cycles_bridge(self):
        g = _make_graph(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        comps = {frozenset(c) for c in strongly_connected_components(g.full_view())}
        assert comps == {frozenset({"n0", "n1"}), frozenset({"n2", "n3"})}


class TestCondensationOrder:
    def test_chain_order(self):
        g = _make_graph(3, [(2, 1), (1, 0)])
        order = condensation_order(g.full_view())
        assert order == [frozenset({"n2"}), frozenset({"n1"}), frozenset({"n0"})]

    def test_tie_break_by_declaration_order(self):
        g = _make_graph(3, [])  # no edges: all ready at once
        order = condensation_order(g.full_view())
        assert order == [frozenset({"n0"}), frozenset({"n1"}), frozenset({"n2"})]

    def test_figure5_component_order_jacobi(self):
        """The paper's Figure 5 lists seven components: {InitialA}, {M},
        {maxK}, {eq.1}, {A, eq.3}, {eq.2}, {newA}. Our processing order is
        topological; M precedes InitialA because of the paper's own bound
        edge M -> InitialA (the null-flowchart data components commute)."""
        g = build_dependency_graph(jacobi_analyzed())
        order = condensation_order(g.full_view())
        assert order == [
            frozenset({"M"}),
            frozenset({"InitialA"}),
            frozenset({"maxK"}),
            frozenset({"eq.1"}),
            frozenset({"A", "eq.3"}),
            frozenset({"eq.2"}),
            frozenset({"newA"}),
        ]
        # The order that matters for the emitted flowchart:
        pos = {n: i for i, comp in enumerate(order) for n in comp}
        assert pos["eq.1"] < pos["eq.3"] < pos["eq.2"]

    def test_gauss_seidel_same_components(self):
        g = build_dependency_graph(gauss_seidel_analyzed())
        order = condensation_order(g.full_view())
        assert frozenset({"A", "eq.3"}) in order

    def test_topological_property(self):
        g = build_dependency_graph(jacobi_analyzed())
        order = condensation_order(g.full_view())
        position = {n: i for i, comp in enumerate(order) for n in comp}
        for e in g.edges.values():
            assert position[e.src] <= position[e.dst]


@st.composite
def random_digraph(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    n_edges = draw(st.integers(min_value=0, max_value=30))
    edges = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(n_edges)
    ]
    return n, edges


class TestAgainstNetworkx:
    @given(random_digraph())
    @settings(max_examples=200, deadline=None)
    def test_scc_matches_networkx(self, data):
        n, edges = data
        g = _make_graph(n, edges)
        ours = {frozenset(c) for c in strongly_connected_components(g.full_view())}
        nxg = nx.MultiDiGraph()
        nxg.add_nodes_from(f"n{i}" for i in range(n))
        nxg.add_edges_from((f"n{a}", f"n{b}") for a, b in edges)
        theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
        assert ours == theirs

    @given(random_digraph())
    @settings(max_examples=100, deadline=None)
    def test_condensation_order_is_topological(self, data):
        n, edges = data
        g = _make_graph(n, edges)
        order = condensation_order(g.full_view())
        position = {v: i for i, comp in enumerate(order) for v in comp}
        for a, b in edges:
            assert position[f"n{a}"] <= position[f"n{b}"]

    @given(random_digraph())
    @settings(max_examples=100, deadline=None)
    def test_condensation_partitions_nodes(self, data):
        n, edges = data
        g = _make_graph(n, edges)
        order = condensation_order(g.full_view())
        all_nodes = [v for comp in order for v in comp]
        assert sorted(all_nodes) == sorted(g.nodes)
        assert len(all_nodes) == len(set(all_nodes))
