"""Tests for dependency-graph construction — reproduces Figure 3."""

import pytest

from repro.core.paper import jacobi_analyzed
from repro.graph.build import bound_adjacency, build_dependency_graph, data_adjacency
from repro.graph.depgraph import EdgeKind
from repro.graph.dot import to_dot, to_text
from repro.graph.labels import SubscriptClass
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module


@pytest.fixture(scope="module")
def fig3():
    return build_dependency_graph(jacobi_analyzed())


class TestFigure3Nodes:
    def test_node_set(self, fig3):
        assert set(fig3.nodes) == {
            "InitialA",
            "M",
            "maxK",
            "newA",
            "A",
            "eq.1",
            "eq.2",
            "eq.3",
        }

    def test_node_dimension_labels(self, fig3):
        # "an array A[K,I,J] has three node labels"
        assert fig3.node("A").rank == 3
        assert fig3.node("InitialA").rank == 2
        assert fig3.node("newA").rank == 2
        assert fig3.node("M").rank == 0
        assert [d.name for d in fig3.node("eq.3").dims] == ["K", "I", "J"]

    def test_equation_nodes(self, fig3):
        eqs = [n.id for n in fig3.equation_nodes()]
        assert eqs == ["eq.1", "eq.2", "eq.3"]


class TestFigure3DataEdges:
    def test_data_adjacency(self, fig3):
        adj = data_adjacency(fig3)
        assert adj["InitialA"] == {"eq.1"}
        assert adj["eq.1"] == {"A"}
        assert adj["A"] == {"eq.2", "eq.3"}
        assert adj["eq.2"] == {"newA"}
        assert adj["eq.3"] == {"A"}
        assert adj["maxK"] == {"eq.2"}  # newA = A[maxK] references maxK
        assert adj["M"] == {"eq.3"}  # boundary tests reference M
        assert adj["newA"] == set()

    def test_one_edge_per_reference(self, fig3):
        # eq.3 references A five times.
        a_to_eq3 = [
            e
            for e in fig3.edges_between("A", "eq.3")
            if e.kind is EdgeKind.DATA
        ]
        assert len(a_to_eq3) == 5

    def test_jacobi_k_dimension_all_offset(self, fig3):
        for e in fig3.edges_between("A", "eq.3"):
            k_info = e.subscripts[0]
            assert k_info.cls is SubscriptClass.OFFSET
            assert k_info.offset == 1

    def test_interior_edges_have_other_in_i_or_j(self, fig3):
        # A[K-1,I+1,J] and A[K-1,I,J+1] carry "+1" (class OTHER) labels.
        others = [
            s.describe()
            for e in fig3.edges_between("A", "eq.3")
            for s in e.subscripts
            if s.cls is SubscriptClass.OTHER and s.delta == 1
        ]
        assert sorted(others) == ["I + 1", "J + 1"]

    def test_eq2_reference_upper_bound(self, fig3):
        (edge,) = [e for e in fig3.edges_between("A", "eq.2") if e.kind is EdgeKind.DATA]
        assert edge.subscripts[0].is_upper_bound
        assert edge.subscripts[1].cls is SubscriptClass.IDENTITY
        assert edge.subscripts[2].cls is SubscriptClass.IDENTITY

    def test_lhs_edges_marked(self, fig3):
        lhs = [e for e in fig3.edges.values() if e.is_lhs]
        assert {(e.src, e.dst) for e in lhs} == {
            ("eq.1", "A"),
            ("eq.2", "newA"),
            ("eq.3", "A"),
        }


class TestFigure3BoundEdges:
    def test_bound_edges(self, fig3):
        # "a data dependency edge is drawn from M to InitialA, to A, and to
        # NewA ... from maxK to A for the same reason."
        adj = bound_adjacency(fig3)
        assert {"InitialA", "A", "newA"} <= adj["M"]
        assert "A" in adj["maxK"]

    def test_bound_edges_to_equations(self, fig3):
        # Loop bounds: eq.3 iterates K = 2..maxK and I,J = 0..M+1.
        adj = bound_adjacency(fig3)
        assert "eq.3" in adj["maxK"]
        assert "eq.3" in adj["M"]


class TestRecordsAndHierarchy:
    def test_hierarchical_edges(self):
        mod = analyze_module(
            parse_module(
                "T: module (p: record x: real; y: real end): [d: real];\n"
                "define d = p.x + p.y;\nend T;"
            )
        )
        g = build_dependency_graph(mod)
        hier = [e for e in g.edges.values() if e.kind is EdgeKind.HIERARCHICAL]
        assert {(e.src, e.dst) for e in hier} == {("p", "p.x"), ("p", "p.y")}
        # Data edges run from the *fields* to the equation.
        adj = data_adjacency(g)
        assert adj["p.x"] == {"eq.1"}
        assert adj["p.y"] == {"eq.1"}

    def test_nested_record_nodes(self):
        mod = analyze_module(
            parse_module(
                "T: module (p: record inner: record v: real end end): [d: real];\n"
                "define d = p.inner.v;\nend T;"
            )
        )
        g = build_dependency_graph(mod)
        assert "p.inner.v" in g.nodes
        adj = data_adjacency(g)
        assert adj["p.inner.v"] == {"eq.1"}


class TestRendering:
    def test_dot_output(self, fig3):
        dot = to_dot(fig3)
        assert dot.startswith("digraph")
        assert '"A" -> "eq.3"' in dot
        assert "style=dashed" in dot  # bound edges

    def test_text_output(self, fig3):
        text = to_text(fig3)
        assert "data dependency edges:" in text
        assert "subrange-bound edges:" in text
        assert "A -> eq.3" in text
