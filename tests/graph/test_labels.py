"""Unit tests for subscript classification (paper Figure 2)."""

from repro.graph.labels import SubscriptClass, classify_subscript
from repro.ps.parser import parse_expression
from repro.ps.semantics import EquationDim
from repro.ps.types import SubrangeType


def _dims():
    K = SubrangeType("K", parse_expression("2"), parse_expression("maxK"))
    I = SubrangeType("I", parse_expression("0"), parse_expression("M+1"))
    J = SubrangeType("J", parse_expression("0"), parse_expression("M+1"))
    return [EquationDim("K", K), EquationDim("I", I), EquationDim("J", J)]


def classify(text, array_pos=0, dim_subrange=None):
    return classify_subscript(parse_expression(text), array_pos, _dims(), dim_subrange)


class TestIdentity:
    def test_bare_index(self):
        info = classify("I")
        assert info.cls is SubscriptClass.IDENTITY
        assert info.index == "I"
        assert info.delta == 0
        assert info.offset is None

    def test_eq_dim_position(self):
        assert classify("K").eq_dim == 0
        assert classify("I").eq_dim == 1
        assert classify("J").eq_dim == 2

    def test_identity_with_zero_offset(self):
        info = classify("I + 0")
        assert info.cls is SubscriptClass.IDENTITY


class TestOffset:
    def test_minus_one(self):
        info = classify("K - 1")
        assert info.cls is SubscriptClass.OFFSET
        assert info.offset == 1
        assert info.delta == -1

    def test_minus_two(self):
        info = classify("K - 2")
        assert info.offset == 2

    def test_reversed_form(self):
        # -1 + K is still I - constant
        info = classify("-1 + K")
        assert info.cls is SubscriptClass.OFFSET
        assert info.offset == 1

    def test_nested_constant_arithmetic(self):
        info = classify("K - (3 - 1)")
        assert info.cls is SubscriptClass.OFFSET
        assert info.offset == 2


class TestOther:
    def test_plus_constant_is_other(self):
        # "I + 1" is "any other expression" for scheduling purposes...
        info = classify("I + 1")
        assert info.cls is SubscriptClass.OTHER
        # ...but the delta is still recorded for the hyperplane transform.
        assert info.delta == 1
        assert info.index == "I"

    def test_scaled_index_is_other(self):
        info = classify("2 * K")
        assert info.cls is SubscriptClass.OTHER
        assert info.delta is None

    def test_two_indices_is_other(self):
        info = classify("I + J")
        assert info.cls is SubscriptClass.OTHER
        assert info.indices == frozenset({"I", "J"})

    def test_affine_multi_index_records_indices(self):
        info = classify("K - 2*I - J")
        assert info.cls is SubscriptClass.OTHER
        assert info.indices == frozenset({"K", "I", "J"})


class TestConstants:
    def test_literal(self):
        info = classify("1")
        assert info.cls is SubscriptClass.OTHER
        assert info.const == 1
        assert info.indices == frozenset()

    def test_non_index_name(self):
        info = classify("maxK")
        assert info.cls is SubscriptClass.OTHER
        assert info.const is None

    def test_upper_bound_detection(self):
        K = SubrangeType("Kdim", parse_expression("1"), parse_expression("maxK"))
        info = classify("maxK", dim_subrange=K)
        assert info.is_upper_bound

    def test_upper_bound_with_expression(self):
        I = SubrangeType("I", parse_expression("0"), parse_expression("M+1"))
        info = classify("M + 1", dim_subrange=I)
        assert info.is_upper_bound

    def test_not_upper_bound(self):
        K = SubrangeType("Kdim", parse_expression("1"), parse_expression("maxK"))
        info = classify("maxK - 1", dim_subrange=K)
        assert not info.is_upper_bound


class TestDescribe:
    def test_descriptions(self):
        assert classify("I").describe() == "I"
        assert classify("K - 1").describe() == "K - 1"
        assert classify("I + 1").describe() == "I + 1"
        assert classify("5").describe() == "const"
