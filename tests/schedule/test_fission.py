"""The fission analysis: SCC grouping, replica construction, marker-path
addressing, DOALL promotion, and the all-or-nothing rejections (interlocked
carries, shared-target output dependences, window-mode hazards)."""

import pytest

from repro.core.genprog import generate_program
from repro.core.recurrences import coupled_analyzed, mixed_analyzed
from repro.graph.build import build_dependency_graph
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.schedule.fission import (
    FissionSplit,
    _analyze_loop,
    fission_reject,
    fission_split,
    fission_splits,
)
from repro.schedule.flowchart import Flowchart, LoopDescriptor
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_module


def _merged(analyzed):
    graph = build_dependency_graph(analyzed)
    return merge_loops(schedule_module(analyzed, graph), graph)


def _analyze(source):
    return analyze_module(parse_module(source))


class TestSplitStructure:
    def test_mixed_splits_into_three_recurrence_pieces(self):
        analyzed = mixed_analyzed()
        chart = _merged(analyzed)
        splits = fission_splits(analyzed, chart)
        (split,) = splits.values()
        assert split.parts == 3
        assert split.groups == ((0,), (1,), (2,))
        assert split.promoted == (False, False, False)
        assert split.describe() == ["DO(eq.4)", "DO(eq.5)", "DO(eq.6)"]
        assert split.usable(False) and split.usable(True)

    def test_each_unit_lands_in_exactly_one_piece(self):
        analyzed = mixed_analyzed()
        chart = _merged(analyzed)
        (split,) = fission_splits(analyzed, chart).values()
        loop = chart.descriptor_at(split.path)
        assert sorted(u for g in split.groups for u in g) == list(
            range(len(loop.body))
        )
        # Replica bodies share the original descriptor objects.
        for piece, group in zip(split.pieces, split.groups):
            assert [id(u) for u in piece.body] == [
                id(loop.body[u]) for u in group
            ]

    def test_marker_paths_round_trip(self):
        analyzed = mixed_analyzed()
        chart = _merged(analyzed)
        (split,) = fission_splits(analyzed, chart).values()
        for k, piece in enumerate(split.pieces):
            marker = split.path + (-1, k)
            assert chart.descriptor_at(marker) is piece
            assert chart.path_of(piece) == marker
        with pytest.raises(LookupError):
            chart.descriptor_at((0, -1, 0))

    def test_ordered_flow_pins_the_replica_order(self):
        # R consumes U in the same iteration: two groups, U's first.
        src = """\
Chain: module (X: array[1 .. n] of int; n: int):
       [U: array[0 .. n] of int; R: array[0 .. n] of int];
type
    I = 1 .. n;
define
    U[0] = 0;
    R[0] = 0;
    U[I] = U[I-1] + X[I];
    R[I] = R[I-1] + U[I];
end Chain;
"""
        analyzed = _analyze(src)
        chart = _merged(analyzed)
        (split,) = fission_splits(analyzed, chart).values()
        assert split.parts == 2
        assert split.describe() == ["DO(eq.3)", "DO(eq.4)"]  # U before R

    def test_coupled_pair_stays_in_one_group(self):
        # Mutually recursive units condense into a single two-member
        # group; the independent third unit still splits away.
        src = """\
Pair: module (X: array[1 .. n] of int; n: int):
      [P: array[0 .. n] of int; Q: array[0 .. n] of int;
       W: array[0 .. n] of int];
type
    I = 1 .. n;
define
    P[0] = 0;
    Q[0] = 1;
    W[0] = 0;
    P[I] = P[I-1] + Q[I-1];
    Q[I] = Q[I-1] + P[I];
    W[I] = W[I-1] + X[I];
end Pair;
"""
        analyzed = _analyze(src)
        chart = _merged(analyzed)
        (split,) = fission_splits(analyzed, chart).values()
        assert split.parts == 2
        assert any(len(g) == 2 for g in split.groups)

    def test_do_group_of_independent_maps_promotes_to_doall(self):
        # Hand-built DO over two carry-free units (the shape a foreign
        # flowchart builder can produce): each piece promotes to DOALL.
        src = """\
Maps: module (X: array[1 .. n] of int; n: int):
      [Y: array[1 .. n] of int; Z: array[1 .. n] of int];
type
    I = 1 .. n;
define
    Y[I] = X[I] + 1;
    Z[I] = X[I] * 2;
end Maps;
"""
        analyzed = _analyze(src)
        chart = schedule_module(analyzed)
        loops = list(chart.loops())
        hand = Flowchart(
            [LoopDescriptor(
                loops[0].subrange, loops[0].index, False,
                list(loops[0].body) + list(loops[1].body),
                dict(loops[0].windows),
            )],
            windows=dict(chart.windows),
        )
        (split,) = fission_splits(analyzed, hand).values()
        assert split.promoted == (True, True)
        assert all(p.parallel for p in split.pieces)
        assert split.describe() == ["DOALL(eq.1)", "DOALL(eq.2)"]


class TestRejections:
    def test_interlocked_carries_reject(self):
        # The coupled recurrence is one SCC: no legal split, and the
        # reason is recorded for plan provenance.
        analyzed = coupled_analyzed()
        chart = _merged(analyzed)
        loop = next(d for d in chart.loops() if not d.parallel)
        assert fission_split(analyzed, chart, loop, False) is None
        assert (
            fission_reject(analyzed, chart, loop, False)
            == "carried dependences interlock the body into one group"
        )

    def test_shared_target_output_dependence_rejects(self):
        # Two units writing one array interlock (output dependence):
        # hand-built, since single assignment keeps scheduler output free
        # of this shape.
        src = """\
Maps: module (X: array[1 .. n] of int; n: int):
      [Y: array[1 .. n] of int];
type
    I = 1 .. n;
define
    Y[I] = X[I] + 1;
end Maps;
"""
        analyzed = _analyze(src)
        chart = schedule_module(analyzed)
        loop = next(d for d in chart.loops())
        unit = loop.body[0]
        hand_loop = LoopDescriptor(
            loop.subrange, loop.index, False, [unit, unit],
            dict(loop.windows),
        )
        verdict = _analyze_loop(hand_loop, (0,), analyzed, chart)
        assert verdict == (
            "carried dependences interlock the body into one group"
        )

    def test_windowed_array_is_a_window_mode_hazard(self):
        # A local array under window allocation rotates planes as the
        # loop advances: the split stays usable with full storage and is
        # rejected in window mode.
        src = """\
WinMix: module (X: array[1 .. n] of int; n: int):
        [R: array[0 .. n] of int; Y: int];
type
    I = 1 .. n;
var
    U: array [0 .. n] of int;
define
    R[0] = 0;
    U[0] = 0;
    R[I] = R[I-1] + X[I];
    U[I] = U[I-1] + X[I];
    Y = U[n];
end WinMix;
"""
        analyzed = _analyze(src)
        chart = _merged(analyzed)
        assert chart.window_of("U"), "test premise: U must be windowed"
        (split,) = fission_splits(analyzed, chart).values()
        assert split.usable(False)
        assert not split.usable(True)
        assert "windowed array U" in split.mode_hazard[True]
        loop = chart.descriptor_at(split.path)
        assert fission_split(analyzed, chart, loop, True) is None
        assert fission_split(analyzed, chart, loop, False) is split
        assert "windowed array U" in fission_reject(analyzed, chart, loop, True)

    def test_single_unit_loops_are_not_considered(self):
        analyzed = coupled_analyzed()
        chart = schedule_module(analyzed)  # unmerged: loops stay small
        for loop in chart.loops():
            if len(loop.body) < 2:
                assert fission_reject(analyzed, chart, loop, False) is None


class TestGeneratedPrograms:
    def test_groups_always_partition_the_body(self):
        for seed in range(60):
            prog = generate_program(seed)
            analyzed = prog.analyzed()
            chart = _merged(analyzed)
            for path, split in fission_splits(analyzed, chart).items():
                assert isinstance(split, FissionSplit)
                loop = chart.descriptor_at(path)
                assert sorted(u for g in split.groups for u in g) == list(
                    range(len(loop.body))
                )
                assert split.parts >= 2
                assert len(split.pieces) == len(split.promoted)
