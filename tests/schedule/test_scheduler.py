"""Scheduler tests: reproduce Figures 5, 6 and 7 and exercise the error
cases of Schedule-Component."""

import pytest

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.errors import InconsistentPositionError, ScheduleError
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.schedule.scheduler import schedule_module


def schedule_src(src: str):
    return schedule_module(analyze_module(parse_module(src)))


class TestFigure6Jacobi:
    @pytest.fixture(scope="class")
    def flow(self):
        return schedule_module(jacobi_analyzed())

    def test_flowchart_shape(self, flow):
        """Figure 6: DOALL I(DOALL J(eq.1)); DO K(DOALL I(DOALL J(eq.3)));
        DOALL I(DOALL J(eq.2))."""
        assert flow.shape() == [
            ("DOALL", "I", [("DOALL", "J", ["eq.1"])]),
            ("DO", "K", [("DOALL", "I", [("DOALL", "J", ["eq.3"])])]),
            ("DOALL", "I", [("DOALL", "J", ["eq.2"])]),
        ]

    def test_pretty_matches_figure6(self, flow):
        expected = (
            "DOALL I (\n"
            "    DOALL J (\n"
            "        eq.1\n"
            "    )\n"
            ")\n"
            "DO K (\n"
            "    DOALL I (\n"
            "        DOALL J (\n"
            "            eq.3\n"
            "        )\n"
            "    )\n"
            ")\n"
            "DOALL I (\n"
            "    DOALL J (\n"
            "        eq.2\n"
            "    )\n"
            ")"
        )
        assert flow.pretty() == expected

    def test_loop_kinds(self, flow):
        assert flow.loop_kinds() == [
            ("DOALL", "I"),
            ("DOALL", "J"),
            ("DO", "K"),
            ("DOALL", "I"),
            ("DOALL", "J"),
            ("DOALL", "I"),
            ("DOALL", "J"),
        ]

    def test_equation_order(self, flow):
        assert flow.equation_labels() == ["eq.1", "eq.3", "eq.2"]

    def test_virtual_window_two(self, flow):
        # Section 3.4: "the scheduler marks the first dimension of data node
        # A virtual with window two".
        assert flow.window_of("A") == {0: 2}

    def test_outer_k_loop_carries_window(self, flow):
        k_loop = [l for l in flow.loops() if l.index == "K"][0]
        assert k_loop.windows == {"A": (0, 2)}


class TestFigure7GaussSeidel:
    @pytest.fixture(scope="class")
    def flow(self):
        return schedule_module(gauss_seidel_analyzed())

    def test_flowchart_shape(self, flow):
        """Figure 7: the revised eq.3 schedules as a fully iterative nest.
        (The scan of Figure 7 is scrambled; the nest order K, I, J is forced
        by step 3 — I and J carry 'I + 1' / 'J + 1' subscripts until the K-1
        edges are deleted.)"""
        assert flow.shape() == [
            ("DOALL", "I", [("DOALL", "J", ["eq.1"])]),
            ("DO", "K", [("DO", "I", [("DO", "J", ["eq.3"])])]),
            ("DOALL", "I", [("DOALL", "J", ["eq.2"])]),
        ]

    def test_all_eq3_loops_iterative(self, flow):
        kinds = dict()
        for kw, idx in flow.loop_kinds():
            kinds.setdefault(idx, []).append(kw)
        assert "DO" in kinds["K"]
        assert "DO" in kinds["I"]
        assert "DO" in kinds["J"]

    def test_virtual_window_still_two(self, flow):
        # "The virtual dimension analysis gives the same result as in the
        # previous version: the first dimension of A is virtual with window
        # of two elements."
        assert flow.window_of("A") == {0: 2}


class TestSingletonComponents:
    def test_scalar_equation_no_loops(self):
        flow = schedule_src(
            "T: module (x: int): [y: int];\ndefine y = x + 1;\nend T;"
        )
        assert flow.shape() == ["eq.1"]

    def test_elementwise_equation_all_doall(self):
        flow = schedule_src(
            "T: module (X: array[I,J] of real): [Y: array[I,J] of real];\n"
            "type I = 0 .. 9; J = 0 .. 9;\n"
            "define Y = X * 2;\nend T;"
        )
        assert flow.shape() == [("DOALL", "I", [("DOALL", "J", ["eq.1"])])]

    def test_independent_equations_in_topological_order(self):
        flow = schedule_src(
            "T: module (x: int): [y: int];\n"
            "var a: int; b: int;\n"
            "define b = a * 2; a = x + 1; y = b;\nend T;"
        )
        # a = x+1 (eq.2) must run before b = a*2 (eq.1).
        assert flow.equation_labels() == ["eq.2", "eq.1", "eq.3"]


class TestRecurrences:
    def test_first_order_recurrence_iterative(self):
        flow = schedule_src(
            "T: module (n: int; x0: real): [y: real];\n"
            "type I = 2 .. n;\n"
            "var F: array [1 .. n] of real;\n"
            "define F[1] = x0; F[I] = F[I-1] * 0.5; y = F[n];\nend T;"
        )
        assert ("DO", "I") in flow.loop_kinds()

    def test_first_order_recurrence_window(self):
        flow = schedule_src(
            "T: module (n: int; x0: real): [y: real];\n"
            "type I = 2 .. n;\n"
            "var F: array [1 .. n] of real;\n"
            "define F[1] = x0; F[I] = F[I-1] * 0.5; y = F[n];\nend T;"
        )
        assert flow.window_of("F") == {0: 2}

    def test_second_order_recurrence_window_three(self):
        flow = schedule_src(
            "T: module (n: int): [y: real];\n"
            "type I = 3 .. n;\n"
            "var F: array [1 .. n] of real;\n"
            "define F[1] = 1.0; F[2] = 1.0;\n"
            "F[I] = F[I-1] + F[I-2]; y = F[n];\nend T;"
        )
        assert flow.window_of("F") == {0: 3}

    def test_result_array_not_virtual(self):
        # Results must be materialised: no window for a result even when the
        # reference pattern would allow one.
        flow = schedule_src(
            "T: module (n: int): [F: array [1 .. n] of real];\n"
            "type I = 2 .. n;\n"
            "define F[1] = 1.0; F[I] = F[I-1] * 2.0;\nend T;"
        )
        assert flow.window_of("F") == {}

    def test_wavefront_2d_schedules_iteratively(self):
        flow = schedule_src(
            "T: module (n: int): [y: real];\n"
            "type I = 1 .. n; J = 1 .. n;\n"
            "var W: array [0 .. n, 0 .. n] of real;\n"
            "define W[0] = 1.0;\n"
            "W[I, 0] = 1.0;\n"
            "W[I, J] = W[I-1, J] + W[I, J-1];\n"
            "y = W[n, n];\nend T;"
        )
        kinds = flow.loop_kinds()
        assert ("DO", "I") in kinds and ("DO", "J") in kinds

    def test_independent_rows_doall_outer(self):
        # Rows don't interact: I parallel, J iterative.
        flow = schedule_src(
            "T: module (n: int; X: array[R] of real): [y: real];\n"
            "type R = 0 .. n; C = 1 .. n;\n"
            "var S: array [0 .. n, 0 .. n] of real;\n"
            "define S[R, 0] = X[R];\n"
            "S[R, C] = S[R, C-1] * 0.5;\n"
            "y = S[n, n];\nend T;"
        )
        kinds = flow.loop_kinds()
        assert ("DOALL", "R") in kinds
        assert ("DO", "C") in kinds


class TestScheduleErrors:
    def test_scalar_cycle_unschedulable(self):
        with pytest.raises(ScheduleError):
            schedule_src(
                "T: module (x: int): [y: int];\n"
                "var a: int; b: int;\n"
                "define a = b + 1; b = a + 1; y = a;\nend T;"
            )

    def test_elementwise_self_cycle_unschedulable(self):
        # B[I] = B[I] + 1 is circular at every element: the algorithm loops
        # over I (parallel), deletes nothing, and then step 2a fires.
        with pytest.raises(ScheduleError):
            schedule_src(
                "T: module (n: int): [y: real];\n"
                "type I = 0 .. n;\n"
                "var B: array[I] of real;\n"
                "define B[I] = B[I] + 1.0; y = B[n];\nend T;"
            )

    def test_inconsistent_position_footnote_example(self):
        """The footnote's example: A[I,J] = A[I,J-1] + A[J,I] — 'the
        subscripts I and J are not in a consistent position'."""
        with pytest.raises(InconsistentPositionError):
            schedule_src(
                "T: module (n: int): [y: real];\n"
                "type I = 0 .. n; J = 0 .. n;\n"
                "var A: array[I, J] of real;\n"
                "define A[I, J] = A[I, J-1] + A[J, I];\n"
                "y = A[n, n];\nend T;"
            )

    def test_forward_reference_cycle_unschedulable(self):
        # A[I] = A[I+1] + A[I-1]: dimension I has an 'I + 1' subscript, so
        # it cannot be scheduled (and there is no other dimension).
        with pytest.raises(ScheduleError):
            schedule_src(
                "T: module (n: int): [y: real];\n"
                "type I = 1 .. n;\n"
                "var A: array [0 .. n+1] of real;\n"
                "define A[0] = 1.0; A[n+1] = 1.0;\n"
                "A[I] = A[I+1] + A[I-1]; y = A[n];\nend T;"
            )

    def test_error_message_names_component(self):
        with pytest.raises(ScheduleError, match="eq."):
            schedule_src(
                "T: module (x: int): [y: int];\n"
                "var a: int; b: int;\n"
                "define a = b + 1; b = a + 1; y = a;\nend T;"
            )


class TestMutualRecursion:
    def test_two_arrays_mutually_recursive(self):
        flow = schedule_src(
            "T: module (n: int): [y: real];\n"
            "type I = 2 .. n;\n"
            "var P: array [1 .. n] of real; Q: array [1 .. n] of real;\n"
            "define P[1] = 1.0; Q[1] = 2.0;\n"
            "P[I] = Q[I-1] * 0.5;\n"
            "Q[I] = P[I-1] + 1.0;\n"
            "y = P[n] + Q[n];\nend T;"
        )
        kinds = flow.loop_kinds()
        assert ("DO", "I") in kinds
        # Both recurrence equations live under the same iterative loop.
        do_loops = [l for l in flow.loops() if not l.parallel]
        assert len(do_loops) == 1
        eqs = {
            d.node.id
            for d in do_loops[0].body
            if hasattr(d, "node")
        }
        assert eqs == {"eq.3", "eq.4"}

    def test_mutual_recursion_windows(self):
        flow = schedule_src(
            "T: module (n: int): [y: real];\n"
            "type I = 2 .. n;\n"
            "var P: array [1 .. n] of real; Q: array [1 .. n] of real;\n"
            "define P[1] = 1.0; Q[1] = 2.0;\n"
            "P[I] = Q[I-1] * 0.5;\n"
            "Q[I] = P[I-1] + 1.0;\n"
            "y = P[n] + Q[n];\nend T;"
        )
        assert flow.window_of("P") == {0: 2}
        assert flow.window_of("Q") == {0: 2}
