"""Tests for the symbolic-offset extension (Myers & Gokhale [14]).

The published algorithm classifies ``S[I - m]`` (m a module parameter) as
"any other expression" and refuses to schedule the dimension; the extension
accepts it as a backward reference under the recorded assumption m >= 1.
"""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import execute_module
from repro.schedule.scheduler import schedule_module

SYMBOLIC_LAG = (
    "T: module (n: int; m: int): [y: real];\n"
    "type I = 1 .. n;\n"
    "var S: array [1 .. n] of real;\n"
    "define S[I] = if I <= m then 1.0 else S[I - m] * 0.5 + 1.0;\n"
    "y = S[n];\nend T;"
)


def reference(n: int, m: int) -> float:
    s = np.zeros(n + 1)
    for i in range(1, n + 1):
        s[i] = 1.0 if i <= m else s[i - m] * 0.5 + 1.0
    return s[n]


class TestPublishedBehaviour:
    def test_published_algorithm_rejects(self):
        """Faithful default: 'I - m' is not 'I - constant'."""
        analyzed = analyze_module(parse_module(SYMBOLIC_LAG))
        with pytest.raises(ScheduleError, match="not 'I' or 'I - constant'"):
            schedule_module(analyzed)


class TestExtension:
    def test_extension_schedules_iteratively(self):
        analyzed = analyze_module(parse_module(SYMBOLIC_LAG))
        flow = schedule_module(analyzed, symbolic_offsets=True)
        assert ("DO", "I") in flow.loop_kinds()

    def test_assumption_recorded(self):
        analyzed = analyze_module(parse_module(SYMBOLIC_LAG))
        flow = schedule_module(analyzed, symbolic_offsets=True)
        assert any("m >= 1" in a for a in flow.assumptions)

    def test_no_window_for_symbolic_offset(self):
        """A symbolic backward distance has no static window."""
        analyzed = analyze_module(parse_module(SYMBOLIC_LAG))
        flow = schedule_module(analyzed, symbolic_offsets=True)
        assert flow.window_of("S") == {}

    @pytest.mark.parametrize("n,m", [(10, 1), (10, 3), (17, 5), (8, 8)])
    def test_execution_matches_reference(self, n, m):
        analyzed = analyze_module(parse_module(SYMBOLIC_LAG))
        flow = schedule_module(analyzed, symbolic_offsets=True)
        out = execute_module(analyzed, {"n": n, "m": m}, flowchart=flow)
        assert out["y"] == pytest.approx(reference(n, m))

    def test_schedule_is_valid(self):
        from repro.analysis.validate import validate_flowchart_order

        analyzed = analyze_module(parse_module(SYMBOLIC_LAG))
        flow = schedule_module(analyzed, symbolic_offsets=True)
        assert validate_flowchart_order(analyzed, flow, {"n": 12, "m": 3}) == []

    def test_mixed_constant_and_symbolic(self):
        src = (
            "T: module (n: int; m: int): [y: real];\n"
            "type I = 1 .. n;\n"
            "var S: array [1 .. n] of real;\n"
            "define S[I] = if (I <= m) or (I <= 1) then 1.0\n"
            "              else S[I-1] + S[I - m];\n"
            "y = S[n];\nend T;"
        )
        analyzed = analyze_module(parse_module(src))
        with pytest.raises(ScheduleError):
            schedule_module(analyzed)
        flow = schedule_module(analyzed, symbolic_offsets=True)
        assert ("DO", "I") in flow.loop_kinds()

    def test_forward_symbolic_not_accepted(self):
        """'I + m' is not of the backward form: still rejected."""
        src = (
            "T: module (n: int; m: int): [y: real];\n"
            "type I = 1 .. n;\n"
            "var S: array [1 .. n] of real;\n"
            "define S[I] = if I > n - m then 1.0 else S[I + m] * 0.5;\n"
            "y = S[1];\nend T;"
        )
        analyzed = analyze_module(parse_module(src))
        with pytest.raises(ScheduleError):
            schedule_module(analyzed, symbolic_offsets=True)

    def test_edge_label_describes_symbolic_offset(self):
        from repro.graph.build import build_dependency_graph

        analyzed = analyze_module(parse_module(SYMBOLIC_LAG))
        graph = build_dependency_graph(analyzed)
        (edge,) = [
            e for e in graph.edges_between("S", "eq.1")
        ]
        assert edge.subscripts[0].describe() == "I - m"
