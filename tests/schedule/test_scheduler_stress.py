"""Scheduler stress tests: higher ranks, mixed nest kinds, dimension
selection order, and executor agreement on the resulting schedules."""

import numpy as np
import pytest

from repro.analysis.validate import validate_flowchart_order
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module


def setup(src):
    analyzed = analyze_module(parse_module(src))
    return analyzed, schedule_module(analyzed)


class TestMixedNests:
    SRC = (
        "T: module (n: int; X: array[R, Z] of real): [y: real];\n"
        "type R = 0 .. n; C = 1 .. n; Z = 0 .. n;\n"
        "var G: array [0 .. n, 0 .. n, 0 .. n] of real;\n"
        "define G[R, 0, Z] = X[R, Z];\n"
        "G[R, C, Z] = G[R, C-1, Z] * 0.5 + 1.0;\n"
        "y = G[n, n, n];\nend T;"
    )

    def test_doall_do_doall_nest(self):
        """Independent in R and Z, recurrent in C: the schedule is
        DOALL R (DO C (DOALL Z (...)))."""
        analyzed, flow = setup(self.SRC)
        shape = flow.shape()
        rec = [s for s in shape if isinstance(s, tuple) and "eq.2" in str(s)][0]
        assert rec[0] == "DOALL" and rec[1] == "R"
        inner = rec[2][0]
        assert inner[0] == "DO" and inner[1] == "C"
        innermost = inner[2][0]
        assert innermost[0] == "DOALL" and innermost[1] == "Z"

    def test_valid(self):
        analyzed, flow = setup(self.SRC)
        assert validate_flowchart_order(analyzed, flow, {"n": 4}) == []

    def test_vectorised_do_inside_doall(self):
        """Executes a scalar DO nested inside a vectorised DOALL, with a
        further vectorised DOALL inside that."""
        analyzed, flow = setup(self.SRC)
        n = 5
        rng = np.random.default_rng(0)
        x = rng.random((n + 1, n + 1))
        fast = execute_module(
            analyzed, {"n": n, "X": x}, options=ExecutionOptions(vectorize=True)
        )
        slow = execute_module(
            analyzed, {"n": n, "X": x}, options=ExecutionOptions(vectorize=False)
        )
        assert fast["y"] == pytest.approx(slow["y"])


class TestFourDimensional:
    SRC = (
        "T: module (n: int): [y: real];\n"
        "type T1 = 1 .. n; A1 = 0 .. n; B1 = 0 .. n; C1 = 0 .. n;\n"
        "var G: array [0 .. n, 0 .. n, 0 .. n, 0 .. n] of real;\n"
        "define G[0] = 1.0;\n"
        "G[T1, A1, B1, C1] = G[T1 - 1, A1, B1, C1] + 1.0;\n"
        "y = G[n, n, n, n];\nend T;"
    )

    def test_schedule(self):
        analyzed, flow = setup(self.SRC)
        kinds = flow.loop_kinds()
        assert ("DO", "T1") in kinds
        assert ("DOALL", "A1") in kinds
        assert ("DOALL", "B1") in kinds
        assert ("DOALL", "C1") in kinds

    def test_window(self):
        analyzed, flow = setup(self.SRC)
        assert flow.window_of("G") == {0: 2}

    def test_execution(self):
        analyzed, flow = setup(self.SRC)
        out = execute_module(analyzed, {"n": 3})
        assert out["y"] == pytest.approx(4.0)  # 1 + n


class TestDimensionSelection:
    def test_first_dimension_blocked_second_chosen(self):
        """When dimension 0 carries a forward reference, the scheduler must
        pick dimension 1 first (deterministic candidate order skips 0)."""
        src = (
            "T: module (n: int): [y: real];\n"
            "type R = 1 .. n; C = 1 .. n;\n"
            "var G: array [0 .. n+1, 0 .. n] of real;\n"
            "define G[0] = 1.0; G[n+1] = 1.0;\n"
            "G[R, 0] = 1.0;\n"
            "G[R, C] = G[R-1, C-1] + G[R+1, C-1];\n"
            "y = G[n, n];\nend T;"
        )
        analyzed, flow = setup(src)
        # Dimension 0 (R) has R+1: the C loop must be scheduled first
        # (iterative); R then becomes parallel.
        rec_loops = [l for l in flow.loops() if "C" == l.index or "R" == l.index]
        c_loop = [l for l in flow.loops() if l.index == "C"]
        r_loop = [l for l in flow.loops() if l.index == "R"]
        # C appears as an outer iterative loop containing the R loop.
        outer = [
            l for l in flow.loops()
            if l.index == "C" and any(
                getattr(d, "index", None) == "R" for d in l.body
            )
        ]
        assert outer and not outer[0].parallel
        assert outer[0].body[0].parallel

    def test_execution_of_column_major_wavefront(self):
        src = (
            "T: module (n: int): [y: real];\n"
            "type R = 1 .. n; C = 1 .. n;\n"
            "var G: array [0 .. n+1, 0 .. n] of real;\n"
            "define G[0] = 1.0; G[n+1] = 1.0;\n"
            "G[R, 0] = 1.0;\n"
            "G[R, C] = G[R-1, C-1] + G[R+1, C-1];\n"
            "y = G[n, n];\nend T;"
        )
        analyzed, flow = setup(src)
        assert validate_flowchart_order(analyzed, flow, {"n": 5}) == []
        n = 6
        fast = execute_module(analyzed, {"n": n})
        slow = execute_module(
            analyzed, {"n": n}, options=ExecutionOptions(vectorize=False)
        )
        assert fast["y"] == pytest.approx(slow["y"])


class TestThreeArrayMutualRecursion:
    SRC = (
        "T: module (n: int): [y: real];\n"
        "type I = 2 .. n;\n"
        "var P: array [1 .. n] of real;\n"
        "    Q: array [1 .. n] of real;\n"
        "    R: array [1 .. n] of real;\n"
        "define P[1] = 1.0; Q[1] = 2.0; R[1] = 3.0;\n"
        "P[I] = R[I-1] * 0.5;\n"
        "Q[I] = P[I-1] + 1.0;\n"
        "R[I] = Q[I-1] - P[I];\n"
        "y = P[n] + Q[n] + R[n];\nend T;"
    )

    def test_one_shared_do_loop(self):
        analyzed, flow = setup(self.SRC)
        do_loops = [l for l in flow.loops() if not l.parallel]
        assert len(do_loops) == 1
        labels = {
            d.node.id for d in do_loops[0].body if hasattr(d, "node")
        }
        assert labels == {"eq.4", "eq.5", "eq.6"}

    def test_all_windows_detected(self):
        analyzed, flow = setup(self.SRC)
        assert flow.window_of("P") == {0: 2}
        assert flow.window_of("Q") == {0: 2}
        assert flow.window_of("R") == {0: 2}

    def test_intra_iteration_identity_reference_ordering(self):
        """R[I] reads P[I] (same iteration): the scheduler must order eq.4
        before eq.6 inside the shared loop body."""
        analyzed, flow = setup(self.SRC)
        do_loop = [l for l in flow.loops() if not l.parallel][0]
        order = [d.node.id for d in do_loop.body if hasattr(d, "node")]
        assert order.index("eq.4") < order.index("eq.6")

    def test_execution(self):
        analyzed, flow = setup(self.SRC)
        assert validate_flowchart_order(analyzed, flow, {"n": 8}) == []
        out = execute_module(analyzed, {"n": 8})
        slow = execute_module(
            analyzed, {"n": 8}, options=ExecutionOptions(vectorize=False)
        )
        assert out["y"] == pytest.approx(slow["y"])

    def test_windowed_execution(self):
        analyzed, flow = setup(self.SRC)
        full = execute_module(analyzed, {"n": 10})
        windowed = execute_module(
            analyzed,
            {"n": 10},
            options=ExecutionOptions(use_windows=True, debug_windows=True),
        )
        assert windowed["y"] == pytest.approx(full["y"])
