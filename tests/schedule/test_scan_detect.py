"""Recognition of parallelizable recurrences (:mod:`repro.schedule.scan_detect`):
which sequential DO loops classify as associative scans or first-order
linear recurrences, and — just as load-bearing — which must be rejected.
A false positive silently reassociates a loop the three-phase kernels
cannot solve; every negative here is all-or-nothing."""

from repro.core.recurrences import (
    ilinrec_analyzed,
    isum_analyzed,
    line_sweep_analyzed,
    runmax_analyzed,
    scan_analyzed,
)
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.schedule.scan_detect import scan_info, scan_loops
from repro.schedule.scheduler import schedule_module


def _loops(source: str, use_windows: bool = False):
    analyzed = analyze_module(parse_module(source))
    flow = schedule_module(analyzed)
    return scan_loops(analyzed, flow, use_windows)


def _one(source: str):
    loops = _loops(source)
    assert len(loops) == 1, f"expected one recognized loop, got {loops}"
    return next(iter(loops.values()))


class TestPositives:
    def test_integer_sum_reduce(self):
        analyzed = isum_analyzed()
        flow = schedule_module(analyzed)
        (info,) = scan_loops(analyzed, flow, False).values()
        assert (info.kind, info.op, info.is_float) == ("scan", "+", False)
        assert info.target == "T"

    def test_running_max(self):
        analyzed = runmax_analyzed()
        flow = schedule_module(analyzed)
        (info,) = scan_loops(analyzed, flow, False).values()
        assert (info.kind, info.op, info.is_float) == ("scan", "max", True)

    def test_integer_linear_recurrence(self):
        analyzed = ilinrec_analyzed()
        flow = schedule_module(analyzed)
        (info,) = scan_loops(analyzed, flow, False).values()
        assert (info.kind, info.op, info.is_float) == ("linrec", None, False)
        assert info.a_expr is not None

    def test_float_linrec_with_constant_coefficient(self):
        # The pipeline corpus' scan workload: S[I] = S[I-1] * a + X[I].
        analyzed = scan_analyzed()
        flow = schedule_module(analyzed)
        (info,) = scan_loops(analyzed, flow, False).values()
        assert (info.kind, info.is_float) == ("linrec", True)

    def test_subtraction_normalizes_to_plus_scan(self):
        info = _one("""\
Sub: module (X: array[1 .. n] of real; n: int):
     [S: array[0 .. n] of real];
type
    I = 1 .. n;
define
    S[0] = 0.0;
    S[I] = S[I-1] - X[I];
end Sub;
""")
        assert (info.kind, info.op) == ("scan", "+")

    def test_product_scan(self):
        info = _one("""\
Prod: module (X: array[1 .. n] of int; n: int):
      [P: array[0 .. n] of int];
type
    I = 1 .. n;
define
    P[0] = 1;
    P[I] = P[I-1] * X[I];
end Prod;
""")
        assert (info.kind, info.op, info.is_float) == ("scan", "*", False)

    def test_descriptor_lookup_matches_table(self):
        analyzed = isum_analyzed()
        flow = schedule_module(analyzed)
        (path,) = scan_loops(analyzed, flow, False)
        desc = flow.descriptor_at(path)
        assert scan_info(analyzed, flow, desc, False) is not None


class TestNegatives:
    def test_two_carries_rejected(self):
        # Second-order recurrence: the (a, b) monoid does not cover it.
        assert _loops("""\
Fib: module (X: array[1 .. n] of int; n: int):
     [S: array[0 .. n] of int];
type
    I = 2 .. n;
define
    S[0] = 0;
    S[1] = 1;
    S[I] = S[I-1] + S[I-2] + X[I];
end Fib;
""") == {}

    def test_distance_two_carry_rejected(self):
        # A stride-2 carry interleaves two independent recurrences; the
        # blocked kernels assume distance exactly 1.
        assert _loops("""\
Skip: module (X: array[2 .. n] of int; n: int):
      [S: array[0 .. n] of int];
type
    I = 2 .. n;
define
    S[0] = 0;
    S[1] = 1;
    S[I] = S[I-2] + X[I];
end Skip;
""") == {}

    def test_module_call_in_body_rejected(self):
        # A module call may do anything (including read the carry through
        # the callee); all-or-nothing says reject.
        from repro.ps.parser import parse_program
        from repro.ps.semantics import analyze_program

        program = analyze_program(parse_program("""\
Helper: module (x: int): [y: int];
define
    y = x * 2;
end Helper;

Caller: module (X: array[1 .. n] of int; n: int):
        [S: array[0 .. n] of int];
type
    I = 1 .. n;
define
    S[0] = 0;
    S[I] = S[I-1] + Helper(X[I]);
end Caller;
"""))
        analyzed = program["Caller"]
        flow = schedule_module(analyzed)
        assert scan_loops(analyzed, flow, False) == {}

    def test_multi_equation_do_body_rejected(self):
        # Coupled P/Q recurrence: one MSCC, two equations in the DO body.
        from repro.core.recurrences import coupled_analyzed

        analyzed = coupled_analyzed()
        flow = schedule_module(analyzed)
        assert scan_loops(analyzed, flow, False) == {}

    def test_nested_loops_rejected(self):
        analyzed = line_sweep_analyzed()
        flow = schedule_module(analyzed)
        assert scan_loops(analyzed, flow, False) == {}

    def test_carry_times_carry_rejected(self):
        # x^2-type recurrences are not linear in the carry.
        assert _loops("""\
Sq: module (X: array[1 .. n] of real; n: int):
    [S: array[0 .. n] of real];
type
    I = 1 .. n;
define
    S[0] = 2.0;
    S[I] = S[I-1] * S[I-1] + X[I];
end Sq;
""") == {}

    def test_windowed_target_rejected_in_window_mode(self):
        # A reduction consumed only at its last plane gets a 2-slot window
        # in window mode: there is no full subrange for the three-phase
        # kernels to sweep. Flat mode recognizes the same loop.
        source = """\
WinSum: module (X: array[1 .. n] of int; n: int): [Y: int];
type
    I = 1 .. n;
var
    S: array [0 .. n] of int;
define
    S[0] = 0;
    S[I] = S[I-1] + X[I];
    Y = S[n];
end WinSum;
"""
        analyzed = analyze_module(parse_module(source))
        flow = schedule_module(analyzed)
        assert flow.window_of("S")
        assert scan_loops(analyzed, flow, False) != {}
        assert scan_loops(analyzed, flow, True) == {}

    def test_min_with_nonlocal_extra_arg_still_scan(self):
        # min(S[I-1], X[I]) is a scan; min with three args is not matched.
        assert _loops("""\
Min3: module (X: array[1 .. n] of real; n: int):
      [S: array[0 .. n] of real];
type
    I = 1 .. n;
define
    S[0] = 0.0;
    S[I] = min(S[I-1], min(X[I], 1.0));
end Min3;
""") != {}
