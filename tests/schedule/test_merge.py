"""Tests for the loop-merging improvement pass."""

import numpy as np
import pytest

from repro.analysis.validate import validate_flowchart_order
from repro.core.paper import jacobi_analyzed
from repro.graph.build import build_dependency_graph
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import execute_module
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_module


def setup(src):
    analyzed = analyze_module(parse_module(src))
    graph = build_dependency_graph(analyzed)
    flow = schedule_module(analyzed, graph)
    return analyzed, graph, flow


INDEPENDENT = (
    "T: module (X: array[I,J] of real):\n"
    "   [U: array[I,J] of real; V: array[I,J] of real];\n"
    "type I = 0 .. 7; J = 0 .. 7;\n"
    "define U = X * 2; V = X + 1;\nend T;"
)

CHAINED_IDENTITY = (
    "T: module (X: array[I] of real): [V: array[I] of real];\n"
    "type I = 0 .. 7;\n"
    "var U: array[I] of real;\n"
    "define U = X * 2; V = U + 1;\nend T;"
)

CHAINED_SHIFTED = (
    "T: module (X: array[0 .. 8] of real): [V: array[I] of real];\n"
    "type I = 1 .. 8;\n"
    "var U: array[0 .. 8] of real;\n"
    "define U = X * 2; V[I] = U[I-1] + 1;\nend T;"
)


class TestMerging:
    def test_independent_equations_merge(self):
        """The paper's own criticism: eq's 'which though not recursively
        related, nevertheless depend on the same subscript(s)' should share
        one loop."""
        analyzed, graph, flow = setup(INDEPENDENT)
        assert len(flow.loops()) == 4  # two I(J(..)) nests
        merged = merge_loops(flow, graph)
        assert len(merged.loops()) == 2  # one I(J(eq1; eq2)) nest
        assert merged.equation_labels() == ["eq.1", "eq.2"]

    def test_identity_chain_merges(self):
        analyzed, graph, flow = setup(CHAINED_IDENTITY)
        merged = merge_loops(flow, graph)
        assert len(merged.loops()) == 1

    def test_merged_flowchart_still_valid(self):
        analyzed, graph, flow = setup(INDEPENDENT)
        merged = merge_loops(flow, graph)
        assert validate_flowchart_order(analyzed, merged, {}) == []

    def test_identity_chain_merged_still_valid(self):
        analyzed, graph, flow = setup(CHAINED_IDENTITY)
        merged = merge_loops(flow, graph)
        assert validate_flowchart_order(analyzed, merged, {}) == []

    def test_shifted_dependence_blocks_doall_merge(self):
        """V[I] = U[I-1] reads a sibling iteration's element: merging the
        two DOALLs would race."""
        analyzed, graph, flow = setup(CHAINED_SHIFTED)
        merged = merge_loops(flow, graph)
        assert len(merged.loops()) == len(flow.loops())  # unchanged

    def test_merged_execution_matches(self):
        analyzed, graph, flow = setup(CHAINED_IDENTITY)
        merged = merge_loops(flow, graph)
        x = np.arange(8.0)
        out1 = execute_module(analyzed, {"X": x}, flowchart=flow)
        out2 = execute_module(analyzed, {"X": x}, flowchart=merged)
        np.testing.assert_allclose(out1["V"], out2["V"])

    def test_jacobi_nests_do_not_merge(self):
        """eq.1's DOALL nest cannot merge with the DO K nest, nor the DO K
        nest with eq.2's: different loop kinds/indices."""
        analyzed = jacobi_analyzed()
        graph = build_dependency_graph(analyzed)
        flow = schedule_module(analyzed, graph)
        merged = merge_loops(flow, graph)
        assert merged.shape() == flow.shape()

    def test_do_do_merge_with_offset_allowed(self):
        """Two first-order recurrences over the same range: DO-DO merging
        tolerates I-c references (the loop still runs low-to-high)."""
        src = (
            "T: module (n: int): [y: real];\n"
            "type I = 2 .. n;\n"
            "var P: array [1 .. n] of real; Q: array [1 .. n] of real;\n"
            "define P[1] = 1.0; P[I] = P[I-1] * 0.5;\n"
            "Q[1] = 1.0; Q[I] = Q[I-1] + P[I-1];\n"
            "y = Q[n];\nend T;"
        )
        analyzed, graph, flow = setup(src)
        merged = merge_loops(flow, graph)
        do_loops = [l for l in merged.loops() if not l.parallel]
        assert len(do_loops) < len([l for l in flow.loops() if not l.parallel])
        assert validate_flowchart_order(analyzed, merged, {"n": 6}) == []
        out1 = execute_module(analyzed, {"n": 6}, flowchart=flow)
        out2 = execute_module(analyzed, {"n": 6}, flowchart=merged)
        assert out1["y"] == pytest.approx(out2["y"])

    def test_three_way_merge(self):
        src = (
            "T: module (X: array[I] of real):\n"
            "   [A: array[I] of real; B: array[I] of real; C: array[I] of real];\n"
            "type I = 0 .. 5;\n"
            "define A = X + 1; B = X + 2; C = X + 3;\nend T;"
        )
        analyzed, graph, flow = setup(src)
        merged = merge_loops(flow, graph)
        assert len(merged.loops()) == 1
        assert merged.equation_labels() == ["eq.1", "eq.2", "eq.3"]
