"""Cost-model calibration regression: the model must predict *this
runtime's* per-element costs, not the evaluator-era ones.

The committed ``benchmarks/baseline/BENCH_kernels.json`` artifact carries
measured evaluator-vs-kernel timings on Jacobi;
``MachineModel.from_kernel_bench`` re-derives the execution-mode overheads
from it, and the shipped defaults must stay within a small band of that
derivation. The speedup pin uses a *non-anchor* grid so the test checks
generalisation, not the calibration identity."""

import json
import pathlib

import pytest

from repro.core.paper import jacobi_analyzed
from repro.machine.cost import MachineModel, equation_cost
from repro.machine.simulator import simulate_flowchart
from repro.schedule.scheduler import schedule_module

BASELINE = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks" / "baseline" / "BENCH_kernels.json"
)


@pytest.fixture(scope="module")
def bench():
    return json.loads(BASELINE.read_text())


@pytest.fixture(scope="module")
def calibrated(bench):
    return MachineModel.from_kernel_bench(bench)


def _measured_speedup(bench, backend, grid):
    row = next(
        r for r in bench["rows"]
        if r["workload"] == "jacobi"
        and r["backend"] == backend
        and r["grid"] == grid
    )
    return row["speedup"]


def _eq3():
    analyzed = jacobi_analyzed()
    return next(eq for eq in analyzed.equations if eq.label == "eq.3")


class TestCalibration:
    def test_predicted_kernel_speedup_matches_anchor(self, bench, calibrated):
        """At the calibration anchor (largest serial grid) the predicted
        evaluator->kernel speedup reproduces the measurement closely."""
        eq = _eq3()
        predicted = calibrated.element_cost(eq, "evaluator") / calibrated.element_cost(
            eq, "kernel"
        )
        grids = [r["grid"] for r in bench["rows"]
                 if r["workload"] == "jacobi" and r["backend"] == "serial"]
        measured = _measured_speedup(bench, "serial", max(grids))
        assert predicted == pytest.approx(measured, rel=0.15)

    def test_predicted_speedup_generalises_off_anchor(self, bench, calibrated):
        """The same prediction lands within tolerance of the measured
        speedup at a grid the calibration never saw."""
        eq = _eq3()
        predicted = calibrated.element_cost(eq, "evaluator") / calibrated.element_cost(
            eq, "kernel"
        )
        grids = sorted(
            r["grid"] for r in bench["rows"]
            if r["workload"] == "jacobi" and r["backend"] == "serial"
        )
        for grid in grids[:-1]:
            measured = _measured_speedup(bench, "serial", grid)
            assert predicted == pytest.approx(measured, rel=0.5), grid

    def test_shipped_defaults_track_the_baseline(self, calibrated):
        """The constants baked into MachineModel must stay within a 2x band
        of what the committed baseline derives — the ROADMAP's 'cost model
        still predicts evaluator-era costs' failure mode cannot recur
        silently."""
        default = MachineModel()
        assert default.eval_element_overhead == pytest.approx(
            calibrated.eval_element_overhead, rel=1.0
        )
        assert default.vector_element_factor == pytest.approx(
            calibrated.vector_element_factor, rel=1.0
        )

    def test_mode_ordering(self):
        """Per-element cost must rank evaluator > kernel > nest > vector —
        the orderings the planner's choices rest on. The native mode sits
        far below nest but in the same memory-bound band as vector (large
        NumPy spans and compiled C loops both stream the same doubles);
        what native saves is the per-span setup and per-row bookkeeping,
        which the planner prices separately."""
        m = MachineModel()
        eq = _eq3()
        costs = [
            m.element_cost(eq, mode)
            for mode in ("evaluator", "kernel", "nest", "vector")
        ]
        assert costs == sorted(costs, reverse=True)
        assert costs[0] > 10 * costs[1]  # the interpretation tax is real
        native = m.element_cost(eq, "native")
        assert native < m.element_cost(eq, "nest") / 10
        assert native == pytest.approx(m.element_cost(eq, "vector"), rel=2.0)

    def test_native_factor_tracks_the_native_baseline(self):
        """``from_native_bench`` re-derives the native per-element factor
        from the committed BENCH_native.json; the shipped default must stay
        within a 2x band of that derivation (same contract as the other
        mode constants)."""
        path = BASELINE.parent / "BENCH_native.json"
        payload = json.loads(path.read_text())
        derived = MachineModel.from_native_bench(payload)
        default = MachineModel()
        assert default.native_element_factor == pytest.approx(
            derived.native_element_factor, rel=1.0
        )
        # native stays far below the Python nest tier after recalibration
        eq = _eq3()
        assert derived.element_cost(eq, "native") < derived.element_cost(
            eq, "nest"
        ) / 10

    def test_simulator_modes_scale_cycles(self):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        args = {"M": 8, "maxK": 4}
        m = MachineModel()
        ev = simulate_flowchart(analyzed, flow, args, m, mode="evaluator").cycles
        kern = simulate_flowchart(analyzed, flow, args, m, mode="kernel").cycles
        abstract = simulate_flowchart(analyzed, flow, args, m).cycles
        assert ev > kern > abstract

    def test_abstract_mode_unchanged(self):
        """mode='abstract' is the paper-era machine: identical cycles to
        the pre-calibration simulator (equation cost only)."""
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        m = MachineModel()
        r = simulate_flowchart(analyzed, flow, {"M": 4, "maxK": 3}, m)
        r2 = simulate_flowchart(
            analyzed, flow, {"M": 4, "maxK": 3}, m, mode="abstract"
        )
        assert r.cycles == r2.cycles

    def test_equation_cost_unchanged_by_calibration(self):
        """The structural cost rules (ops, memory) are untouched."""
        m = MachineModel()
        eq = _eq3()
        assert equation_cost(eq, m) == int(equation_cost(eq, m))
