"""Simulated-machine tests: speedup shapes for the paper's schedules."""

import pytest

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.machine.cost import MachineModel, expression_cost
from repro.machine.report import speedup_table
from repro.machine.simulator import simulate_flowchart
from repro.ps.parser import parse_expression
from repro.schedule.scheduler import schedule_module


class TestExpressionCost:
    def test_literal_free(self):
        assert expression_cost(parse_expression("42"), MachineModel()) == 0

    def test_binop_counts_ops(self):
        m = MachineModel()
        assert expression_cost(parse_expression("a + b"), m) == m.op_cost

    def test_array_read_costs_memory(self):
        m = MachineModel()
        assert expression_cost(parse_expression("A[1]"), m) == m.memory_cost

    def test_if_takes_worst_branch(self):
        m = MachineModel()
        cheap = parse_expression("if c then 1 else 2")
        wide = parse_expression("if c then A[1] + A[2] else 2")
        assert expression_cost(wide, m) > expression_cost(cheap, m)

    def test_stencil_cost(self):
        m = MachineModel()
        e = parse_expression("(A[K-1,I,J-1] + A[K-1,I-1,J] + A[K-1,I,J+1] + A[K-1,I+1,J]) / 4")
        # 4 reads + 8 index ops + 3 adds + 1 div
        assert expression_cost(e, m) == 4 * m.memory_cost + 12 * m.op_cost


class TestJacobiSpeedup:
    @pytest.fixture(scope="class")
    def setup(self):
        analyzed = jacobi_analyzed()
        return analyzed, schedule_module(analyzed)

    def test_single_processor_baseline(self, setup):
        analyzed, flow = setup
        r1 = simulate_flowchart(analyzed, flow, {"M": 32, "maxK": 20}, MachineModel())
        assert r1.cycles > 0

    def test_speedup_grows_with_processors(self, setup):
        analyzed, flow = setup
        table = speedup_table(
            analyzed, flow, {"M": 32, "maxK": 20}, [1, 2, 4, 8, 16, 32]
        )
        s = table.speedups
        assert all(b >= a * 0.99 for a, b in zip(s, s[1:]))
        # Near-linear at the interior: the paper's motivation for DOALL.
        assert s[-1] > 16

    def test_efficiency_declines(self, setup):
        analyzed, flow = setup
        table = speedup_table(analyzed, flow, {"M": 16, "maxK": 10}, [1, 4, 16, 64])
        e = table.efficiencies
        assert e[0] == pytest.approx(1.0)
        assert e[-1] < e[0]

    def test_small_problem_saturates(self, setup):
        """With M=4 the DOALL has only 36 iterations: speedup must flatten
        once P exceeds the trip count."""
        analyzed, flow = setup
        table = speedup_table(analyzed, flow, {"M": 4, "maxK": 8}, [1, 36, 72, 144])
        s = table.speedups
        assert s[2] == pytest.approx(s[1], rel=0.2)
        assert s[3] == pytest.approx(s[2], rel=0.05)


class TestGaussSeidelVsHyperplane:
    @pytest.fixture(scope="class")
    def setup(self):
        analyzed = gauss_seidel_analyzed()
        res = hyperplane_transform(analyzed)
        return analyzed, res

    def test_iterative_schedule_has_no_speedup(self, setup):
        analyzed, res = setup
        args = {"M": 16, "maxK": 10}
        flow = res.original_flowchart
        r1 = simulate_flowchart(analyzed, flow, args, MachineModel(processors=1))
        r16 = simulate_flowchart(analyzed, flow, args, MachineModel(processors=16))
        # Only the init/extract DOALLs speed up; the recurrence dominates.
        assert r1.cycles / r16.cycles < 2.0

    def test_transformed_schedule_speeds_up(self, setup):
        analyzed, res = setup
        args = {"M": 16, "maxK": 10}
        t1 = simulate_flowchart(
            res.transformed, res.transformed_flowchart, args, MachineModel(processors=1)
        )
        t16 = simulate_flowchart(
            res.transformed, res.transformed_flowchart, args, MachineModel(processors=16)
        )
        assert t1.cycles / t16.cycles > 4.0

    def test_crossover_transformed_wins_at_high_p(self, setup):
        """The transformed program does more total work (guards, padding)
        but parallelises; the iterative original wins at P=1 and loses at
        large P — the qualitative claim of section 4."""
        analyzed, res = setup
        args = {"M": 16, "maxK": 10}
        orig_1 = simulate_flowchart(analyzed, res.original_flowchart, args, MachineModel(1))
        trans_1 = simulate_flowchart(
            res.transformed, res.transformed_flowchart, args, MachineModel(1)
        )
        orig_32 = simulate_flowchart(analyzed, res.original_flowchart, args, MachineModel(32))
        trans_32 = simulate_flowchart(
            res.transformed, res.transformed_flowchart, args, MachineModel(32)
        )
        assert orig_1.cycles < trans_1.cycles  # sequential: original wins
        assert trans_32.cycles < orig_32.cycles  # parallel: transformed wins


class TestModelKnobs:
    def test_barrier_cost_hurts_small_loops(self):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        args = {"M": 2, "maxK": 50}
        cheap_sync = MachineModel(processors=8, doall_fork=0, doall_barrier=0)
        costly_sync = MachineModel(processors=8, doall_fork=500, doall_barrier=500)
        fast = simulate_flowchart(analyzed, flow, args, cheap_sync)
        slow = simulate_flowchart(analyzed, flow, args, costly_sync)
        assert slow.cycles > fast.cycles

    def test_collapse_improves_nested_doall(self):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        args = {"M": 16, "maxK": 4}
        m = MachineModel(processors=64)
        collapsed = simulate_flowchart(analyzed, flow, args, m, collapse=True)
        flat = simulate_flowchart(analyzed, flow, args, m, collapse=False)
        assert collapsed.cycles <= flat.cycles

    def test_breakdown_labels(self):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        r = simulate_flowchart(analyzed, flow, {"M": 4, "maxK": 4}, MachineModel())
        assert any("eq.3" in k for k in r.breakdown)

    def test_speedup_table_pretty(self):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        table = speedup_table(analyzed, flow, {"M": 8, "maxK": 4}, [1, 2, 4])
        text = table.pretty("Jacobi")
        assert "Jacobi" in text
        assert "speedup" in text
