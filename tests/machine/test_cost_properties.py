"""Property tests for the simulated machine's cost behaviour."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.machine.cost import MachineModel, expression_cost
from repro.machine.simulator import simulate_flowchart
from repro.ps.parser import parse_expression
from repro.schedule.scheduler import schedule_module


class TestSimulatorProperties:
    @given(
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_processors_never_slower(self, p1, p2):
        if p1 > p2:
            p1, p2 = p2, p1
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        args = {"M": 12, "maxK": 6}
        c1 = simulate_flowchart(analyzed, flow, args, MachineModel(processors=p1)).cycles
        c2 = simulate_flowchart(analyzed, flow, args, MachineModel(processors=p2)).cycles
        assert c2 <= c1

    @given(st.integers(min_value=2, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_speedup_bounded_by_processors(self, p):
        """No superlinear speedup in the model."""
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        args = {"M": 24, "maxK": 8}
        c1 = simulate_flowchart(analyzed, flow, args, MachineModel(processors=1)).cycles
        cp = simulate_flowchart(analyzed, flow, args, MachineModel(processors=p)).cycles
        assert c1 / cp <= p + 1e-9

    @given(st.integers(min_value=4, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_bigger_problems_cost_more(self, m):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        model = MachineModel(processors=4)
        small = simulate_flowchart(analyzed, flow, {"M": m, "maxK": 5}, model).cycles
        large = simulate_flowchart(analyzed, flow, {"M": m + 4, "maxK": 5}, model).cycles
        assert large > small

    def test_iterative_schedule_insensitive_to_processors(self):
        analyzed = gauss_seidel_analyzed()
        flow = schedule_module(analyzed)
        args = {"M": 12, "maxK": 6}
        cycles = [
            simulate_flowchart(analyzed, flow, args, MachineModel(processors=p)).cycles
            for p in (1, 4, 16, 64)
        ]
        # The dominating DO nest is serial; only the small init/extract
        # DOALLs change, so the spread stays small.
        assert max(cycles) / min(cycles) < 2.0


class TestExpressionCostProperties:
    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_cost_scales_with_op_cost(self, k):
        e = parse_expression("a + b * c - d")
        base = expression_cost(e, MachineModel(op_cost=1))
        scaled = expression_cost(e, MachineModel(op_cost=k))
        assert scaled == k * base

    def test_cost_additive_over_operands(self):
        m = MachineModel()
        left = parse_expression("A[1] + A[2]")
        right = parse_expression("A[3] * A[4]")
        combined = parse_expression("(A[1] + A[2]) + (A[3] * A[4])")
        assert (
            expression_cost(combined, m)
            == expression_cost(left, m) + expression_cost(right, m) + m.op_cost
        )

    def test_with_processors_preserves_other_fields(self):
        m = MachineModel(op_cost=3, doall_fork=7)
        m2 = m.with_processors(8)
        assert m2.processors == 8
        assert m2.op_cost == 3
        assert m2.doall_fork == 7
