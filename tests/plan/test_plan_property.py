"""Any plan, same answer: hand-forced plans stay bit-exact.

The planner only ever chooses *how* a DOALL executes, never what it
computes — so every valid assignment of strategies to loops must reproduce
the serial reference evaluator bit for bit, on every workload. Covered:
the all-serial plan, the all-vectorized plan, and seeded-random plans
drawing a valid strategy per loop (including forced chunking and nest
fusion where safe)."""

import random

import numpy as np
import pytest

from repro.plan.ir import PlanError
from repro.plan.planner import forced_plan, valid_strategies
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.flowchart import LoopDescriptor

from tests.plan.conftest import WORKLOADS


def _reference(analyzed, flow, args, result):
    return execute_module(
        analyzed, args, flowchart=flow,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )[result]


def _run_forced(analyzed, flow, args, backend, **kwargs):
    options = ExecutionOptions(backend=backend, workers=4)
    plan = forced_plan(analyzed, flow, backend, options, **kwargs)
    return plan, execute_module(
        analyzed, args, flowchart=flow, options=options, plan=plan
    )


class TestForcedPlansStayExact:
    @pytest.mark.parametrize("default", ["serial", "vector"])
    def test_uniform_plans(self, workload, default):
        name, analyzed, flow, args, result = workload
        expected = _reference(analyzed, flow, args, result)
        backend = "serial" if default == "serial" else "vectorized"
        plan, out = _run_forced(
            analyzed, flow, args, backend, default=default
        )
        assert all(
            lp.strategy == default
            for lp in plan.loops.values()
            if lp.keyword == "DOALL" and lp.reason == "forced"
        )
        assert np.array_equal(out[result], expected), (name, default)

    def test_random_plans(self, workload):
        """Seeded random strategy per parallel loop, executed on the
        threaded backend (whose base dispatch supports every strategy)."""
        name, analyzed, flow, args, result = workload
        expected = _reference(analyzed, flow, args, result)
        rng = random.Random(f"plans-{name}")
        loops = [d for d in flow.loops() if d.parallel]
        for trial in range(4):
            overrides = {}
            for desc in loops:
                choices = valid_strategies(analyzed, flow, desc)
                path = flow.path_of(desc)
                overrides[path] = rng.choice(choices)
            plan, out = _run_forced(
                analyzed, flow, args, "threaded", overrides=overrides
            )
            assert np.array_equal(out[result], expected), (
                name, trial, sorted(overrides.items()),
            )

    def test_forced_chunk_on_unsafe_loop_raises(self):
        """dp's init DOALLs write windowed planes indexed by the loop —
        chunking them under windows is rejected, not silently planned."""
        name, analyzed, flow, args, result = WORKLOADS[3]
        options = ExecutionOptions(backend="threaded", use_windows=True)
        unsafe = None
        for desc in flow.loops():
            if desc.parallel and "chunk" not in valid_strategies(
                analyzed, flow, desc, use_windows=True
            ):
                unsafe = desc
                break
        assert unsafe is not None, "expected a chunk-unsafe DOALL in dp"
        with pytest.raises(PlanError, match="not chunk-safe"):
            forced_plan(
                analyzed, flow, "threaded", options,
                overrides={flow.path_of(unsafe): "chunk"},
            )

    def test_forced_nest_on_unfusable_loop_raises(self):
        name, analyzed, flow, args, result = WORKLOADS[0]
        options = ExecutionOptions(backend="serial", use_kernels=False)
        doall = next(d for d in flow.loops() if d.parallel)
        with pytest.raises(PlanError, match="not fusable"):
            forced_plan(
                analyzed, flow, "serial", options,
                overrides={flow.path_of(doall): "nest"},
            )

    def test_unknown_strategy_raises(self):
        name, analyzed, flow, args, result = WORKLOADS[0]
        doall = next(d for d in flow.loops() if d.parallel)
        with pytest.raises(PlanError, match="unknown forced strategy"):
            forced_plan(
                analyzed, flow, "serial",
                overrides={flow.path_of(doall): "gpu"},
            )


class TestValidStrategies:
    def test_jacobi_nest_is_on_offer(self, workload):
        name, analyzed, flow, args, result = workload
        for desc in flow.loops():
            if not isinstance(desc, LoopDescriptor) or not desc.parallel:
                continue
            choices = valid_strategies(analyzed, flow, desc)
            assert "serial" in choices and "vector" in choices

    def test_do_loops_only_serial(self):
        name, analyzed, flow, args, result = WORKLOADS[1]  # gauss_seidel
        do = next(d for d in flow.loops() if not d.parallel)
        assert valid_strategies(analyzed, flow, do) == ["serial"]
