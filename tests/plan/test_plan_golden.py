"""Golden-text plan stability: ``ExecutionPlan.pretty()`` is part of the
tool's interface (``repro plan``), so its text on the five paper workloads
is pinned. The planner runs with an explicit ``cpu_count`` — ``auto``'s
backend choice must not depend on the machine running the tests."""

import textwrap

import pytest

from repro.plan.planner import build_plan, forced_plan, valid_strategies
from repro.runtime.executor import ExecutionOptions

from tests.plan.conftest import WORKLOADS

GOLDEN = {
    "jacobi": """\
        plan Relaxation: backend=vectorized workers=4 kernels=native windows=off [auto]
        DOALL I -> vector; trip 10
            DOALL J -> vector; trip 10; nested in span
                eq.1 [kernel=vector]
        DO K -> serial; trip 3
            DOALL I -> vector; trip 10
                DOALL J -> vector; trip 10; nested in span
                    eq.3 [kernel=vector]
        DOALL I -> vector; trip 10
            DOALL J -> vector; trip 10; nested in span
                eq.2 [kernel=vector]""",
    "gauss_seidel": """\
        plan Relaxation: backend=vectorized workers=4 kernels=native windows=off [auto]
        DOALL I -> vector; trip 10
            DOALL J -> vector; trip 10; nested in span
                eq.1 [kernel=vector]
        DO K -> serial; trip 3
            DO I -> serial; trip 10
                DO J -> serial; trip 10
                    eq.3 [kernel=scalar]
        DOALL I -> vector; trip 10
            DOALL J -> vector; trip 10; nested in span
                eq.2 [kernel=vector]""",
    # The hyperplane-transformed subscripts miss the affine fast path, so
    # the vector backend pays fancy-indexing gathers — auto honestly hands
    # the module to the serial backend's native C nests instead.
    "hyperplane_gs": """\
        plan RelaxationHyper: backend=serial workers=4 kernels=native windows=off [auto]
        DO Kp -> serial; trip 25
            DOALL Ip -> nest; trip 4; fused nest kernel
                DOALL Jp -> nest; trip 10; fused
                    eq.1 [kernel=native]
        DOALL I -> nest; trip 10; fused nest kernel
            DOALL J -> nest; trip 10; fused
                eq.2 [kernel=native]""",
    "dp": """\
        plan Align: backend=vectorized workers=4 kernels=native windows=off [auto]
        DOALL _i1 -> vector; trip 7
            eq.1 [kernel=vector]
        DOALL I -> vector; trip 6
            eq.2 [kernel=vector]
        DO I -> serial; trip 6
            DO J -> serial; trip 6
                eq.3 [kernel=scalar]
        eq.4 [kernel=scalar]""",
    "paths_int": """\
        plan Paths: backend=vectorized workers=4 kernels=native windows=off [auto]
        DOALL _i1 -> vector; trip 7
            eq.1 [kernel=vector]
        DOALL I -> vector; trip 6
            eq.2 [kernel=vector]
        DO I -> serial; trip 6
            DO J -> serial; trip 6
                eq.3 [kernel=scalar]
        DOALL _i0 -> vector; trip 7
            eq.4 [kernel=vector]""",
}


#: the same five workloads under the collapse-forcing policy: every
#: collapse-safe DOALL chain is forced to "collapse" (dp and paths_int have
#: no perfect DOALL nest, so their plans fall back to the planner's choice
#: — the texts pin that the policy composes with ordinary planning)
GOLDEN_COLLAPSE = {
    "jacobi": """\
        plan Relaxation: backend=process workers=4 kernels=native windows=off [pinned]
        DOALL I -> collapse x4; depth 2 flat 100; trip 10; forced
            DOALL J -> collapse; trip 10; collapsed
                eq.1 [kernel=native]
        DO K -> serial; trip 3
            DOALL I -> collapse x4; depth 2 flat 100; trip 10; forced
                DOALL J -> collapse; trip 10; collapsed
                    eq.3 [kernel=native]
        DOALL I -> collapse x4; depth 2 flat 100; trip 10; forced
            DOALL J -> collapse; trip 10; collapsed
                eq.2 [kernel=native]""",
    "gauss_seidel": """\
        plan Relaxation: backend=process workers=4 kernels=native windows=off [pinned]
        DOALL I -> collapse x4; depth 2 flat 100; trip 10; forced
            DOALL J -> collapse; trip 10; collapsed
                eq.1 [kernel=native]
        DO K -> serial; trip 3
            DO I -> serial; trip 10
                DO J -> serial; trip 10
                    eq.3 [kernel=scalar]
        DOALL I -> collapse x4; depth 2 flat 100; trip 10; forced
            DOALL J -> collapse; trip 10; collapsed
                eq.2 [kernel=native]""",
    "hyperplane_gs": """\
        plan RelaxationHyper: backend=process workers=4 kernels=native windows=off [pinned]
        DO Kp -> serial; trip 25
            DOALL Ip -> collapse x4; depth 2 flat 40; trip 4; forced
                DOALL Jp -> collapse; trip 10; collapsed
                    eq.1 [kernel=native]
        DOALL I -> collapse x4; depth 2 flat 100; trip 10; forced
            DOALL J -> collapse; trip 10; collapsed
                eq.2 [kernel=native]""",
    "dp": """\
        plan Align: backend=process workers=4 kernels=native windows=off [pinned]
        DOALL _i1 -> chunk x4; trip 7
            eq.1 [kernel=native]
        DOALL I -> chunk x4; trip 6
            eq.2 [kernel=native]
        DO I -> serial; trip 6
            DO J -> serial; trip 6
                eq.3 [kernel=scalar]
        eq.4 [kernel=scalar]""",
    "paths_int": """\
        plan Paths: backend=process workers=4 kernels=native windows=off [pinned]
        DOALL _i1 -> chunk x4; trip 7
            eq.1 [kernel=native]
        DOALL I -> chunk x4; trip 6
            eq.2 [kernel=native]
        DO I -> serial; trip 6
            DO J -> serial; trip 6
                eq.3 [kernel=scalar]
        DOALL _i0 -> chunk x4; trip 7
            eq.4 [kernel=native]""",
}


def _scalars(args):
    return {k: v for k, v in args.items() if isinstance(v, int)}


class TestGoldenPlans:
    def test_every_workload_has_a_golden(self):
        assert set(GOLDEN) == {w[0] for w in WORKLOADS}

    @pytest.mark.parametrize(
        "workload", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_auto_plan_text(self, workload):
        name, analyzed, flow, args, _ = workload
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="auto", workers=4),
            _scalars(args), cpu_count=4,
        )
        assert plan.pretty() == textwrap.dedent(GOLDEN[name])

    def test_pinned_serial_jacobi_fuses_nests(self):
        name, analyzed, flow, args, _ = WORKLOADS[0]
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="serial", workers=1),
            _scalars(args), cpu_count=4,
        )
        assert plan.pretty() == textwrap.dedent("""\
            plan Relaxation: backend=serial workers=1 kernels=native windows=off [pinned]
            DOALL I -> nest; trip 10; fused nest kernel
                DOALL J -> nest; trip 10; fused
                    eq.1 [kernel=native]
            DO K -> serial; trip 3
                DOALL I -> nest; trip 10; fused nest kernel
                    DOALL J -> nest; trip 10; fused
                        eq.3 [kernel=native]
            DOALL I -> nest; trip 10; fused nest kernel
                DOALL J -> nest; trip 10; fused
                    eq.2 [kernel=native]""")

    def test_pinned_threaded_jacobi_collapses(self):
        # Near-tie between chunk (per-equation native span kernels) and
        # collapse (one fused native flat kernel per chunk): collapse wins
        # by the span tier's per-call overhead, and is the better shape —
        # fewer native calls, perfect load balance over the flat space.
        name, analyzed, flow, args, _ = WORKLOADS[0]
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="threaded", workers=4),
            _scalars(args), cpu_count=4,
        )
        assert plan.pretty() == textwrap.dedent("""\
            plan Relaxation: backend=threaded workers=4 kernels=native windows=off [pinned]
            DOALL I -> collapse x4; depth 2 flat 100; trip 10
                DOALL J -> collapse; trip 10; collapsed
                    eq.1 [kernel=native]
            DO K -> serial; trip 3
                DOALL I -> collapse x4; depth 2 flat 100; trip 10
                    DOALL J -> collapse; trip 10; collapsed
                        eq.3 [kernel=native]
            DOALL I -> collapse x4; depth 2 flat 100; trip 10
                DOALL J -> collapse; trip 10; collapsed
                    eq.2 [kernel=native]""")

    def test_cycles_rendering_is_optional(self):
        name, analyzed, flow, args, _ = WORKLOADS[0]
        plan = build_plan(
            analyzed, flow, ExecutionOptions(workers=4), _scalars(args),
            cpu_count=4,
        )
        assert "cycles" not in plan.pretty()
        assert "cycles" in plan.pretty(cycles=True)
        assert plan.cycles is not None and plan.cycles > 0

    def test_kernels_off_plans_evaluator(self):
        name, analyzed, flow, args, _ = WORKLOADS[0]
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="serial", use_kernels=False),
            _scalars(args), cpu_count=4,
        )
        assert all(e.kernel == "evaluator" for e in plan.equations.values())
        assert all(lp.strategy != "nest" for lp in plan.loops.values())


class TestGoldenCollapsePlans:
    def test_every_workload_has_a_golden(self):
        assert set(GOLDEN_COLLAPSE) == {w[0] for w in WORKLOADS}

    @pytest.mark.parametrize(
        "workload", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_collapse_forced_plan_text(self, workload):
        name, analyzed, flow, args, _ = workload
        overrides = {
            flow.path_of(desc): "collapse"
            for desc in flow.loops()
            if desc.parallel
            and "collapse" in valid_strategies(analyzed, flow, desc)
        }
        plan = forced_plan(
            analyzed, flow, "process",
            ExecutionOptions(backend="process", workers=4),
            _scalars(args), overrides=overrides,
        )
        assert plan.pretty() == textwrap.dedent(GOLDEN_COLLAPSE[name])
