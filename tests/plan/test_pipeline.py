"""The pipeline strategy at the plan layer: how sibling runs partition
into stages, what the forced plans look like (golden text — part of the
``repro plan`` interface), and how the pricing provenance reads."""

import textwrap

import pytest

from repro.core.recurrences import (
    RECURRENCE_WORKLOADS,
    coupled_analyzed,
    line_sweep_analyzed,
    line_sweep_args,
    scan_analyzed,
    scan_args,
)
from repro.errors import ExecutionError
from repro.plan.planner import build_plan
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions
from repro.schedule.pipeline_stages import pipeline_groups
from repro.schedule.scheduler import schedule_module

from tests.plan.conftest import WORKLOADS


def _groups(source: str):
    analyzed = analyze_module(parse_module(source))
    flow = schedule_module(analyzed)
    return pipeline_groups(analyzed, flow, False)


def _scalars(args):
    return {k: v for k, v in args.items() if isinstance(v, int)}


class TestPartitioning:
    def test_scan_partitions_seq_then_par(self):
        analyzed = scan_analyzed()
        flow = schedule_module(analyzed)
        groups = pipeline_groups(analyzed, flow, False)
        assert set(groups) == {()}
        (group,) = groups[()]
        assert group.start == 1 and group.size == 2
        assert [s.kind for s in group.stages] == ["sequential", "replicated"]
        assert [s.labels for s in group.stages] == [("eq.2",), ("eq.3",)]

    def test_coupled_recurrence_is_one_sequential_stage(self):
        # P and Q are mutually recursive: the scheduler fuses them into one
        # DO (one MSCC), which must become a single sequential stage.
        analyzed = coupled_analyzed()
        flow = schedule_module(analyzed)
        (group,) = pipeline_groups(analyzed, flow, False)[()]
        assert group.kinds() == "seq+par[1]"
        assert group.stages[0].labels == ("eq.3", "eq.4")

    def test_line_sweep_coalesces_identity_consumers(self):
        # D and Mout read their producers at the same row (delta 0): both
        # DOALLs join one replicated stage instead of two chained ones.
        analyzed = line_sweep_analyzed()
        flow = schedule_module(analyzed)
        (group,) = pipeline_groups(analyzed, flow, False)[()]
        assert group.kinds() == "seq+par[2]"
        assert group.stages[1].members == (1, 2)
        assert group.stages[1].labels == ("eq.3", "eq.4")

    def test_shifted_doall_chain_partitions_into_replicated_stages(self):
        # No recurrence at all: two DOALLs linked by a backward-shifted
        # read still pipeline — both stages replicated.
        groups = _groups("""\
Shift: module (X: array[0 .. n] of real; n: int): [Z: array[1 .. n] of real];
type
    I = 1 .. n;
var
    Y: array [0 .. n] of real;
define
    Y[0] = X[0];
    Y[I] = X[I] * 2.0 + X[I-1];
    Z[I] = Y[I] + Y[I-1];
end Shift;
""")
        (group,) = groups[()]
        assert [s.kind for s in group.stages] == ["replicated", "replicated"]

    def test_identity_only_chain_is_not_a_pipeline(self):
        # Same-row deps coalesce everything into one stage; a one-stage
        # "pipeline" is just a loop run, so no group is reported.
        assert _groups("""\
Ident: module (X: array[1 .. n] of real; n: int): [Z: array[1 .. n] of real];
type
    I = 1 .. n;
var
    Y: array [1 .. n] of real;
define
    Y[I] = X[I] * 2.0;
    Z[I] = Y[I] + 1.0;
end Ident;
""") == {}

    def test_forward_read_rejects_the_group(self):
        # The consumer reads S[I+1]: a completed upstream block does not
        # cover the read, so block hand-offs would be wrong.
        assert _groups("""\
Forward: module (X: array[0 .. n+1] of real; n: int): [Z: array[1 .. n] of real];
type
    I = 1 .. n;
var
    S: array [0 .. n+1] of real;
define
    S[0] = 0.0;
    S[I] = S[I-1] + X[I];
    Z[I] = S[I+1] * 2.0;
end Forward;
""") == {}

    def test_mismatched_bounds_reject_the_group(self):
        assert _groups("""\
Mismatch: module (X: array[0 .. n] of real; n: int; m: int):
          [Z: array[1 .. m] of real];
type
    I = 1 .. n; J = 1 .. m;
var
    S: array [0 .. n] of real;
define
    S[0] = 0.0;
    S[I] = S[I-1] + X[I];
    Z[J] = S[J] * 2.0;
end Mismatch;
""") == {}

    @pytest.mark.parametrize(
        "workload", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    @pytest.mark.parametrize("use_windows", [False, True], ids=["flat", "win"])
    def test_paper_workloads_have_no_groups(self, workload, use_windows):
        # The five paper workloads must keep their existing plans: none of
        # their sibling runs is a decoupleable pipeline.
        _, analyzed, flow, _, _ = workload
        assert pipeline_groups(analyzed, flow, use_windows) == {}


GOLDEN_FORCED = {
    "scan": """\
        plan Scan: backend=threaded workers=4 kernels=native windows=off [pinned]
        eq.1 [kernel=scalar]
        DO I -> pipeline x4; stages 2 [seq(eq.2) | par x3(eq.3)]; block 4; trip 64; forced
            eq.2 [kernel=native]
        DOALL I -> pipeline; trip 64; stage 2/2
            eq.3 [kernel=native]""",
    "coupled": """\
        plan Coupled: backend=threaded workers=4 kernels=native windows=off [pinned]
        eq.1 [kernel=scalar]
        eq.2 [kernel=scalar]
        DO I -> pipeline x4; stages 2 [seq(eq.3, eq.4) | par x3(eq.5)]; block 4; trip 64; forced
            eq.3 [kernel=native]
            eq.4 [kernel=native]
        DOALL I -> pipeline; trip 64; stage 2/2
            eq.5 [kernel=native]""",
    # The standalone scan workloads have no consumer siblings, so there is
    # no group to force: at trip 64 the blocked scan loses to the in-order
    # walk and the loops stay serial (tests/plan/test_scan_plan.py pins
    # the forced-scan texts).
    "isum": """\
        plan ISum: backend=threaded workers=4 kernels=native windows=off [pinned]
        eq.1 [kernel=scalar]
        DO I -> serial; trip 64
            eq.2 [kernel=scalar]""",
    "runmax": """\
        plan RunMax: backend=threaded workers=4 kernels=native windows=off [pinned]
        eq.1 [kernel=scalar]
        DO I -> serial; trip 64
            eq.2 [kernel=scalar]""",
    "ilinrec": """\
        plan ILinRec: backend=threaded workers=4 kernels=native windows=off [pinned]
        eq.1 [kernel=scalar]
        DO I -> serial; trip 64
            eq.2 [kernel=scalar]""",
    # Unmerged, the three recurrences interleave with their base-case
    # nodes, so no sibling run of loops forms and there is no group to
    # force (merged, this workload is the fission gate —
    # tests/plan/test_fission_plan.py pins those texts).
    "mixed": """\
        plan Mixed: backend=threaded workers=4 kernels=native windows=off [pinned]
        eq.1 [kernel=scalar]
        DO I -> serial; trip 64
            eq.4 [kernel=scalar]
        eq.2 [kernel=scalar]
        DO I -> serial; trip 64
            eq.5 [kernel=scalar]
        eq.3 [kernel=scalar]
        DO I -> serial; trip 64
            eq.6 [kernel=scalar]""",
    "line_sweep": """\
        plan LineSweep: backend=threaded workers=4 kernels=native windows=off [pinned]
        DOALL J -> chunk x4; trip 10
            eq.1 [kernel=native]
        DO I -> pipeline x4; stages 2 [seq(eq.2) | par x3(eq.3, eq.4)]; block 1; trip 12; forced
            DOALL J -> nest; trip 10; fused
                eq.2 [kernel=native]
        DOALL I -> pipeline; trip 12; stage 2/2
            DOALL J -> vector; trip 10; nested in native span
                eq.3 [kernel=native]
        DOALL I -> pipeline; trip 12; stage 2/2
            DOALL J -> vector; trip 10; nested in native span
                eq.4 [kernel=native]""",
}


class TestGoldenPipelinePlans:
    @pytest.mark.parametrize(
        "workload", RECURRENCE_WORKLOADS, ids=[w[0] for w in RECURRENCE_WORKLOADS]
    )
    def test_forced_pipeline_text(self, workload):
        name, analyzed_fn, args_fn, _ = workload
        analyzed = analyzed_fn()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4, strategy="pipeline"),
            _scalars(args_fn()), cpu_count=4,
        )
        assert plan.pretty() == textwrap.dedent(GOLDEN_FORCED[name])

    def test_line_sweep_pipelines_on_merit(self):
        # No force: the priced decoupling beats the undecoupled plan (a
        # scalar-walked recurrence row vs a fused seq-kernel stage), so
        # the pinned threaded plan picks pipeline by itself.
        analyzed = line_sweep_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4),
            _scalars(line_sweep_args()), cpu_count=4,
        )
        head = next(p for _, p in plan.strategies() if p == "pipeline")
        assert head == "pipeline"
        (note,) = plan.provenance["pipeline_groups"]
        assert note["chosen"] and note["why"] == "decoupling is cheaper"
        assert note["pipeline_cycles"] < note["serial_cycles"]

    def test_scan_rejected_without_force_at_small_trip(self):
        # At trip 64 the stage spin-up dominates: auto pricing must keep
        # the undecoupled plan and say why in the provenance.
        analyzed = scan_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4),
            _scalars(scan_args()), cpu_count=4,
        )
        assert all(s != "pipeline" for _, s in plan.strategies())
        (note,) = plan.provenance["pipeline_groups"]
        assert not note["chosen"]
        assert note["why"] == "undecoupled plan is cheaper"

    def test_pipeline_degrades_to_serial_when_workers_lack(self):
        # Soft force with one worker: a stage per worker is impossible, so
        # the group degrades all-or-nothing to the undecoupled plan.
        analyzed = scan_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=1, strategy="pipeline"),
            _scalars(scan_args()), cpu_count=4,
        )
        assert all(s != "pipeline" for _, s in plan.strategies())

    def test_unknown_strategy_raises(self):
        analyzed = scan_analyzed()
        with pytest.raises(ExecutionError, match="unknown strategy"):
            build_plan(
                analyzed, schedule_module(analyzed),
                ExecutionOptions(backend="threaded", workers=4,
                                 strategy="warp-drive"),
                _scalars(scan_args()), cpu_count=4,
            )

    def test_auto_with_pipeline_strategy_picks_a_pipeline_backend(self):
        # backend=auto + strategy=pipeline narrows the candidates to the
        # backends that own the decoupled engine.
        analyzed = line_sweep_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="auto", workers=4, strategy="pipeline"),
            _scalars(line_sweep_args()), cpu_count=4,
        )
        assert plan.backend in ("threaded", "free-threading")
        assert any(s == "pipeline" for _, s in plan.strategies())
