"""Inner-DOALL chunking: a DOALL whose trip count is below the worker
count must not leave workers idle — the planner hands the team to a
chunk-safe inner DOALL (outer ``iterate``, inner ``chunk``), the waste the
backends could never fix at loop entry on their own."""

import numpy as np
import pytest

from repro.plan.planner import build_plan
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module

#: a tall-skinny elementwise grid: a handful of rows, thousands of columns
SCALE_SOURCE = """\
Scale: module (A: array[1 .. r, 1 .. c] of real; r: int; c: int):
       [B: array[1 .. r, 1 .. c] of real];
type
    I = 1 .. r; J = 1 .. c;
define
    B[I, J] = A[I, J] * 2.0 + 1.0;
end Scale;
"""


def _setup(rows, cols):
    analyzed = analyze_module(parse_module(SCALE_SOURCE))
    flow = schedule_module(analyzed)
    rng = np.random.default_rng(13)
    args = {"A": rng.random((rows, cols)), "r": rows, "c": cols}
    return analyzed, flow, args


def _outer_inner(plan):
    loops = [lp for lp in plan.loops.values() if lp.keyword == "DOALL"]
    outer = min(loops, key=lambda lp: len(lp.path))
    inner = max(loops, key=lambda lp: len(lp.path))
    return outer, inner


class TestTallSkinnyGrid:
    @pytest.mark.parametrize("backend", ["threaded", "process"])
    def test_planner_collapses_the_nest(self, backend):
        """A 4-row grid cannot keep 8 workers busy chunking on rows; with
        a collapse-safe fusable chain the planner now flattens the whole
        nest into one chunked iteration space (PR 4) instead of iterating
        the outer DOALL (PR 3)."""
        analyzed, flow, args = _setup(4, 4096)
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend=backend, workers=8),
            {"r": 4, "c": 4096},
        )
        outer, inner = _outer_inner(plan)
        assert outer.strategy == "collapse"
        assert outer.parts == 8
        assert outer.collapse_depth == 2
        assert outer.flat_trip == 4 * 4096
        assert "trip 4 < 8 workers" in outer.reason
        assert inner.strategy == "collapse"

    @pytest.mark.parametrize("backend", ["threaded", "process"])
    def test_no_collapse_restores_iterate(self, backend):
        """--no-collapse is the escape hatch back to the PR 3 plan: the
        outer DOALL iterates and the inner DOALL takes the team."""
        analyzed, flow, args = _setup(4, 4096)
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend=backend, workers=8, use_collapse=False),
            {"r": 4, "c": 4096},
        )
        outer, inner = _outer_inner(plan)
        assert outer.strategy == "iterate"
        assert outer.chunk_index == inner.index
        assert "trip 4 < 8 workers" in outer.reason
        assert inner.strategy == "chunk"
        assert inner.parts == 8

    def test_wide_outer_still_chunks_outer(self):
        analyzed, flow, args = _setup(64, 64)
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="threaded", workers=8),
            {"r": 64, "c": 64},
        )
        outer, inner = _outer_inner(plan)
        assert outer.strategy == "chunk"
        assert outer.parts == 8
        assert inner.strategy == "vector"

    def test_small_inner_does_not_iterate(self):
        """With a short inner loop there is nothing to win by iterating the
        outer DOALL one row at a time — chunk what trip there is."""
        analyzed, flow, args = _setup(4, 8)
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="threaded", workers=8),
            {"r": 4, "c": 8},
        )
        outer, _ = _outer_inner(plan)
        assert outer.strategy == "chunk"
        assert outer.parts == 4

    def test_inner_chunked_execution_is_exact(self):
        analyzed, flow, args = _setup(4, 4096)
        expected = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]
        out = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="threaded", workers=8),
        )["B"]
        assert np.array_equal(out, expected)

    def test_inner_chunking_distributes_all_elements(self):
        """Eval counts survive the iterate+chunk path: every element is
        computed exactly once."""
        from repro.runtime.backends import BACKENDS
        from repro.runtime.backends.base import ExecutionState
        from repro.runtime.evaluator import Evaluator
        from repro.runtime.kernels import KernelCache
        from repro.runtime.values import RuntimeArray

        analyzed, flow, args = _setup(4, 512)
        options = ExecutionOptions(backend="threaded", workers=8)
        data = {
            "r": 4, "c": 512,
            "A": RuntimeArray.from_numpy(
                "A", np.asarray(args["A"]), [(1, 4), (1, 512)]
            ),
        }
        state = ExecutionState(
            analyzed, flow, options, data, Evaluator(data),
            kernels=KernelCache(analyzed, flow),
        )
        backend = BACKENDS["threaded"](workers=8)
        try:
            backend.run(state)
        finally:
            backend.close()
        assert state.eval_counts == {"eq.1": 4 * 512}


class TestJacobiKeepsOuterChunking:
    def test_wide_jacobi_unaffected(self):
        from repro.core.paper import jacobi_analyzed

        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="threaded", workers=4),
            {"M": 62, "maxK": 4},
        )
        strategies = dict(plan.strategies())
        # 64 rows >> 4 workers: the outer DOALL keeps the team.
        assert strategies["I"] == "chunk"
