"""Online recalibration: measured wall clock corrects the planner.

The calibrated cost model ranks backends from one benchmark artifact; when
real hardware disagrees, ``compare_plans`` records the stopwatch into a
:class:`~repro.plan.calibration.PlanCalibration` store and the next
``auto`` plan for the same (module, sizes) ranks candidates by measurement
— a mispredicted plan is corrected on the second run.
"""

import json
import os

import numpy as np

from repro.core.pipeline import compile_source
from repro.machine.report import compare_plans
from repro.plan.calibration import (
    COST_MODEL_VERSION,
    PlanCalibration,
    store_path,
)
from repro.plan.planner import build_plan
from repro.runtime.executor import ExecutionOptions

SCALE_SOURCE = """\
Scale: module (A: array[1 .. r, 1 .. c] of real; r: int; c: int):
       [B: array[1 .. r, 1 .. c] of real];
type
    I = 1 .. r; J = 1 .. c;
define
    B[I, J] = A[I, J] * 2.0 + 1.0;
end Scale;
"""


class TestCalibrationStore:
    def test_unmeasured_costs_pass_through(self):
        cal = PlanCalibration()
        costs = cal.adjusted_costs("M", {"n": 4}, [("serial", 10.0), ("vectorized", 5.0)])
        assert costs == [10.0, 5.0]

    def test_measured_backend_ranked_by_stopwatch(self):
        cal = PlanCalibration()
        # The model thinks vectorized is 2x cheaper; the stopwatch says
        # serial actually wins on this machine.
        cal.record("M", {"n": 4}, "serial", seconds=0.001, predicted_cycles=10.0, workers=2)
        cal.record("M", {"n": 4}, "vectorized", seconds=0.5, predicted_cycles=5.0, workers=2)
        costs = cal.adjusted_costs(
            "M", {"n": 4}, [("serial", 10.0), ("vectorized", 5.0)], workers=2
        )
        assert costs[0] < costs[1]

    def test_unmeasured_candidate_scaled_through_anchor(self):
        cal = PlanCalibration()
        cal.record("M", {"n": 4}, "serial", seconds=1.0, predicted_cycles=100.0, workers=2)
        costs = cal.adjusted_costs(
            "M", {"n": 4}, [("serial", 100.0), ("threaded", 50.0)], workers=2
        )
        # anchor = 1s / 100 cycles; threaded -> 50 * 0.01 = 0.5s-equivalent
        assert costs == [1.0, 0.5]

    def test_records_are_per_sizes(self):
        cal = PlanCalibration()
        cal.record("M", {"n": 4}, "serial", seconds=9.0, predicted_cycles=1.0, workers=2)
        assert cal.measured("M", {"n": 8}, "serial", workers=2) is None
        assert cal.measured("M", {"n": 4}, "serial", workers=2).seconds == 9.0

    def test_records_are_per_worker_count(self):
        """A 1-worker measurement must not re-rank a 16-worker plan."""
        cal = PlanCalibration()
        cal.record("M", {"n": 4}, "process", seconds=9.0, workers=1)
        assert cal.measured("M", {"n": 4}, "process", workers=16) is None
        costs = cal.adjusted_costs(
            "M", {"n": 4}, [("serial", 10.0), ("process", 5.0)], workers=16
        )
        assert costs == [10.0, 5.0]  # untouched: no evidence at 16 workers

    def test_version_bumps_on_record(self):
        cal = PlanCalibration()
        v0 = cal.version
        cal.record("M", {}, "serial", 1.0)
        assert cal.version == v0 + 1

    def test_records_survive_cpu_affinity_changes(self, monkeypatch):
        """workers=None resolves through the store's *snapshotted* core
        count: a record written under one affinity setting must stay
        reachable after the affinity (and thus os.cpu_count) changes —
        call-time resolution silently orphaned every default-workers
        record."""
        import os

        import repro.plan.calibration as calibration_mod

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setattr(calibration_mod.os, "cpu_count", lambda: 8)
        cal = PlanCalibration()
        cal.record("M", {"n": 4}, "serial", seconds=9.0, workers=None)
        # The machine's affinity narrows from 8 cores to 2.
        monkeypatch.setattr(calibration_mod.os, "cpu_count", lambda: 2)
        rec = cal.measured("M", {"n": 4}, "serial", workers=None)
        assert rec is not None and rec.seconds == 9.0
        # Explicit worker counts keep their own keys.
        assert cal.measured("M", {"n": 4}, "serial", workers=3) is None


class TestDurableStore:
    """The on-disk calibration store: machine-fingerprinted, atomic,
    and never able to take planning down."""

    def test_record_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "cal.json"
        cal = PlanCalibration(path=path)
        cal.record("M", {"n": 4}, "threaded", seconds=0.25,
                   predicted_cycles=100.0, workers=2)
        loaded = PlanCalibration.load(path)
        rec = loaded.measured("M", {"n": 4}, "threaded", workers=2)
        assert rec is not None
        assert rec.seconds == 0.25 and rec.predicted_cycles == 100.0
        assert loaded.version == cal.version

    def test_missing_file_yields_empty_store(self, tmp_path):
        loaded = PlanCalibration.load(tmp_path / "absent.json")
        assert loaded.records == {}
        # ...and the path is attached, so the first record persists
        loaded.record("M", {}, "serial", 1.0)
        assert (tmp_path / "absent.json").exists()

    def test_corrupt_file_never_raises(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text("{not json")
        assert PlanCalibration.load(path).records == {}
        path.write_text(json.dumps({"cost_model_version": COST_MODEL_VERSION,
                                    "cpu_count": os.cpu_count() or 1,
                                    "records": [{"module": "M"}]}))
        assert PlanCalibration.load(path).records == {}

    def test_foreign_version_or_machine_ignored(self, tmp_path):
        path = tmp_path / "cal.json"
        row = {"module": "M", "sizes": [["n", 4]], "workers": 2,
               "backend": "serial", "seconds": 1.0,
               "predicted_cycles": None}
        path.write_text(json.dumps({
            "cost_model_version": COST_MODEL_VERSION + 1,
            "cpu_count": os.cpu_count() or 1,
            "version": 1, "records": [row],
        }))
        assert PlanCalibration.load(path).records == {}
        path.write_text(json.dumps({
            "cost_model_version": COST_MODEL_VERSION,
            "cpu_count": (os.cpu_count() or 1) + 64,
            "version": 1, "records": [row],
        }))
        assert PlanCalibration.load(path).records == {}

    def test_in_memory_store_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        cal = PlanCalibration()  # no path: directly constructed
        cal.record("M", {}, "serial", 1.0)
        assert not list(tmp_path.glob("calibration-*.json"))

    def test_store_path_fingerprints_machine(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        p = store_path(cpu_count=4)
        assert p.parent == tmp_path
        assert f"cpu4-v{COST_MODEL_VERSION}" in p.name
        assert store_path(cpu_count=8) != p

    def test_default_load_lands_in_native_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        cal = PlanCalibration.load()
        cal.record("M", {"n": 2}, "serial", 0.5)
        files = list(tmp_path.glob("calibration-*.json"))
        assert len(files) == 1
        again = PlanCalibration.load()
        assert again.measured("M", {"n": 2}, "serial").seconds == 0.5


class TestMispredictionCorrected:
    def _workload(self):
        result = compile_source(SCALE_SOURCE)
        rng = np.random.default_rng(5)
        args = {"A": rng.random((6, 40)), "r": 6, "c": 40}
        return result, args

    def test_build_plan_follows_fake_measurements(self):
        """Force a 'misprediction' with doctored measurements: whatever
        auto would pick, record it as slow and a different candidate as
        fast — the next plan must switch."""
        result, args = self._workload()
        scalars = {"r": 6, "c": 40}
        options = ExecutionOptions(backend="auto", workers=2)
        first = build_plan(result.analyzed, result.flowchart, options, scalars)
        other = "serial" if first.backend != "serial" else "vectorized"
        cal = PlanCalibration()
        cal.record(
            result.analyzed.name, scalars, first.backend,
            seconds=5.0, predicted_cycles=first.cycles, workers=2,
        )
        cal.record(
            result.analyzed.name, scalars, other,
            seconds=0.0001, predicted_cycles=first.cycles, workers=2,
        )
        second = build_plan(
            result.analyzed, result.flowchart, options, scalars,
            calibration=cal,
        )
        assert second.backend == other

    def test_compare_plans_records_and_compile_result_replans(self):
        """End to end: compare_plans feeds the CompileResult's store, the
        plan cache keys on the store version, and the next auto plan picks
        the measured-best backend for these sizes."""
        result, args = self._workload()
        options = ExecutionOptions(backend="auto", workers=2)
        stale = result.plan(args, execution=options)
        cmp = result.calibrate(
            args, execution=options, workers=2, repeats=1
        )
        assert result._calibration.version >= len(cmp.rows)
        recalibrated = result.plan(args, execution=options)
        assert recalibrated is not stale  # version key invalidated the cache
        assert recalibrated.backend == cmp.best_backend

    def test_compare_plans_standalone_store(self):
        result, args = self._workload()
        cal = PlanCalibration()
        cmp = compare_plans(
            result.analyzed, result.flowchart, args,
            backends=["serial", "vectorized"], workers=2, repeats=1,
            calibration=cal,
        )
        assert {b for (_m, _s, _w, b) in cal.records} >= {"serial", "vectorized"}
        for row in cmp.rows:
            rec = cal.measured(
                result.analyzed.name, {"r": 6, "c": 40}, row["backend"],
                workers=2,
            )
            assert rec is not None and rec.seconds == row["seconds"]
