"""Collapse-aware planning: flattened DOALL nests with fused flat chunks.

The collapse strategy only ever changes *how* a perfect DOALL chain
executes — one linearized iteration space split into flat chunks, each run
by a chunk-parameterized fused kernel — never what it computes. Covered
here: safety detection, forced-collapse parity on every backend (fused and
per-equation fallback), eval-count exactness, mid-row chunk boundaries,
the flat kernel's emitted shape, and degenerate geometries.
"""

import numpy as np
import pytest

from repro.plan.ir import PlanError
from repro.plan.planner import build_plan, forced_plan, valid_strategies
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.kernels import KernelCache
from repro.runtime.kernels.emit import emit_nest_kernel_source
from repro.schedule.flowchart import (
    collapse_chain,
    loop_collapse_safe,
    split_range,
)
from repro.schedule.scheduler import schedule_module

SCALE_SOURCE = """\
Scale: module (A: array[1 .. r, 1 .. c] of real; r: int; c: int):
       [B: array[1 .. r, 1 .. c] of real];
type
    I = 1 .. r; J = 1 .. c;
define
    B[I, J] = A[I, J] * 2.0 + 1.0;
end Scale;
"""

#: three-deep perfect nest
CUBE_SOURCE = """\
Cube: module (n: int): [B: array[1 .. n, 1 .. n, 1 .. n] of int];
type
    I = 1 .. n; J = 1 .. n; K = 1 .. n;
define
    B[I, J, K] = I * 10000 + J * 100 + K;
end Cube;
"""


def _setup(source, **scalars):
    analyzed = analyze_module(parse_module(source))
    flow = schedule_module(analyzed)
    return analyzed, flow, scalars


def _scale_args(rows, cols, seed=3):
    rng = np.random.default_rng(seed)
    return {"A": rng.random((rows, cols)), "r": rows, "c": cols}


class TestCollapseSafety:
    def test_scale_nest_is_collapse_safe(self):
        analyzed, flow, _ = _setup(SCALE_SOURCE)
        outer = next(d for d in flow.loops() if d.parallel)
        assert loop_collapse_safe(outer, analyzed, flow.windows, False)
        chain, body = collapse_chain(outer)
        assert [loop.index for loop in chain] == ["I", "J"]
        assert len(body) == 1

    def test_single_doall_is_not_collapsible(self):
        analyzed, flow, _ = _setup(
            """\
Vec: module (A: array[1 .. n] of real; n: int):
     [B: array[1 .. n] of real];
type
    I = 1 .. n;
define
    B[I] = A[I] + 1.0;
end Vec;
"""
        )
        loop = next(d for d in flow.loops() if d.parallel)
        assert not loop_collapse_safe(loop, analyzed, flow.windows, False)
        assert "collapse" not in valid_strategies(analyzed, flow, loop)

    def test_forcing_collapse_on_single_doall_raises(self):
        analyzed, flow, _ = _setup(
            """\
Vec: module (A: array[1 .. n] of real; n: int):
     [B: array[1 .. n] of real];
type
    I = 1 .. n;
define
    B[I] = A[I] + 1.0;
end Vec;
"""
        )
        loop = next(d for d in flow.loops() if d.parallel)
        with pytest.raises(PlanError, match="not a collapse-safe"):
            forced_plan(
                analyzed, flow, "threaded",
                overrides={flow.path_of(loop): "collapse"},
            )

    def test_three_deep_chain(self):
        analyzed, flow, _ = _setup(CUBE_SOURCE)
        outer = next(d for d in flow.loops() if d.parallel)
        chain, _ = collapse_chain(outer)
        assert [loop.index for loop in chain] == ["I", "J", "K"]
        assert loop_collapse_safe(outer, analyzed, flow.windows, False)


class TestCollapseExecution:
    @pytest.mark.parametrize(
        "backend", ["serial", "vectorized", "threaded", "process", "process-fork"]
    )
    def test_forced_collapse_parity(self, backend):
        analyzed, flow, scalars = _setup(SCALE_SOURCE, r=5, c=67)
        args = _scale_args(5, 67)
        expected = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]
        options = ExecutionOptions(backend=backend, workers=4)
        plan = forced_plan(
            analyzed, flow, backend, options, scalars, default="collapse"
        )
        out = execute_module(
            analyzed, args, flowchart=flow, options=options, plan=plan
        )["B"]
        assert np.array_equal(out, expected)

    def test_unfused_collapse_walk_parity(self):
        """With fusion off the flat chunks run the per-equation walk —
        same chunks, per-element reference semantics."""
        analyzed, flow, scalars = _setup(SCALE_SOURCE, r=5, c=67)
        args = _scale_args(5, 67)
        expected = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]
        options = ExecutionOptions(backend="threaded", workers=4)
        plan = forced_plan(
            analyzed, flow, "threaded", options, scalars, default="collapse"
        )
        for lp in plan.loops.values():
            lp.fuse = False
        out = execute_module(
            analyzed, args, flowchart=flow, options=options, plan=plan
        )["B"]
        assert np.array_equal(out, expected)

    def test_three_deep_collapse_parity(self):
        analyzed, flow, scalars = _setup(CUBE_SOURCE, n=7)
        args = {"n": 7}
        expected = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]
        options = ExecutionOptions(backend="threaded", workers=4)
        plan = forced_plan(
            analyzed, flow, "threaded", options, scalars, default="collapse"
        )
        outer = plan.loops[(0,)]
        assert outer.strategy == "collapse"
        out = execute_module(
            analyzed, args, flowchart=flow, options=options, plan=plan
        )["B"]
        assert np.array_equal(out, expected)

    def test_eval_counts_exact(self):
        """Every flat element is computed exactly once across chunks."""
        from repro.runtime.backends import BACKENDS
        from repro.runtime.backends.base import ExecutionState
        from repro.runtime.evaluator import Evaluator
        from repro.runtime.values import RuntimeArray

        analyzed, flow, scalars = _setup(SCALE_SOURCE, r=4, c=130)
        args = _scale_args(4, 130)
        options = ExecutionOptions(backend="threaded", workers=8)
        plan = forced_plan(
            analyzed, flow, "threaded", options, scalars, default="collapse"
        )
        data = {
            "r": 4, "c": 130,
            "A": RuntimeArray.from_numpy(
                "A", np.asarray(args["A"]), [(1, 4), (1, 130)]
            ),
        }
        state = ExecutionState(
            analyzed, flow, options, data, Evaluator(data),
            kernels=KernelCache(analyzed, flow), plan=plan,
        )
        backend = BACKENDS["threaded"](workers=8)
        try:
            backend.run(state)
        finally:
            backend.close()
        assert state.eval_counts == {"eq.1": 4 * 130}

    def test_chunks_split_mid_row(self):
        """520 elements over 8 workers -> 65-element chunks that cross the
        130-column row boundary; delinearization keeps them disjoint."""
        spans = split_range(0, 4 * 130 - 1, 8)
        assert len(spans) == 8
        assert any(lo % 130 != 0 for lo, _ in spans[1:])

    def test_empty_inner_range(self):
        """A zero-extent inner loop makes the flat space empty — collapse
        must do exactly what the reference walk does (nothing)."""
        analyzed, flow, scalars = _setup(SCALE_SOURCE, r=3, c=0)
        args = {"A": np.zeros((3, 0)), "r": 3, "c": 0}
        expected = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["B"]
        options = ExecutionOptions(backend="threaded", workers=4)
        plan = forced_plan(
            analyzed, flow, "threaded", options, scalars, default="collapse"
        )
        out = execute_module(
            analyzed, args, flowchart=flow, options=options, plan=plan
        )["B"]
        assert (out is None and expected is None) or np.array_equal(out, expected)


class TestWalkReentrancy:
    def test_unfused_walk_with_inner_doall_does_not_redispatch(self):
        """A collapse chain whose body holds a further DOALL (imperfect
        below the chain): the unfused flat walk runs inside pool workers,
        so the body DOALL must execute strictly serially — re-entering
        chunk dispatch would block on the already-saturated pool."""
        from repro.runtime.backends import BACKENDS
        from repro.runtime.backends.base import ExecutionState
        from repro.runtime.evaluator import Evaluator
        from repro.schedule.flowchart import Flowchart, NodeDescriptor

        src = """\
Mix: module (n: int): [B: array[1 .. n, 1 .. n] of int;
                       W: array[1 .. n, 1 .. n, 1 .. n] of int];
type
    I = 1 .. n; J = 1 .. n; K = 1 .. n;
define
    W[I, J, K] = (I + J) * K;
    B[I, J] = I * 10 + J;
end Mix;
"""
        analyzed = analyze_module(parse_module(src))
        flow = schedule_module(analyzed)
        loops = {d.index: d for d in flow.loops()}
        eq_nodes = {
            d.node.equation.label: d
            for d in flow.walk()
            if isinstance(d, NodeDescriptor) and d.node.is_equation
        }
        # Hand-assemble DOALL I { DOALL J { eq.2, DOALL K { eq.1 } } }:
        # the chain is [I, J]; the K DOALL lands in the chain body.
        import dataclasses

        kloop = dataclasses.replace(loops["K"], body=[eq_nodes["eq.1"]])
        jloop = dataclasses.replace(loops["J"], body=[eq_nodes["eq.2"], kloop])
        iloop = dataclasses.replace(loops["I"], body=[jloop])
        hand = Flowchart(descriptors=[iloop])

        options = ExecutionOptions(backend="threaded", workers=2)
        plan = forced_plan(
            analyzed, hand, "threaded", options, {"n": 6},
            overrides={(0,): "collapse"},
        )
        for lp in plan.loops.values():
            lp.fuse = False
        data = {"n": 6}
        state = ExecutionState(
            analyzed, hand, options, data, Evaluator(data),
            kernels=KernelCache(analyzed, hand), plan=plan,
        )
        backend = BACKENDS["threaded"](workers=2)
        try:
            backend.run(state)
        finally:
            backend.close()
        w = state.data["W"].to_numpy()
        b = state.data["B"].to_numpy()
        for i in range(1, 7):
            for j in range(1, 7):
                assert b[i - 1, j - 1] == i * 10 + j
                for k in range(1, 7):
                    assert w[i - 1, j - 1, k - 1] == (i + j) * k
        assert state.eval_counts == {"eq.1": 6 * 6 * 6, "eq.2": 6 * 6}


class TestFlatKernelSource:
    def test_flat_variant_delinearizes_rows(self):
        analyzed, flow, _ = _setup(SCALE_SOURCE)
        outer = next(d for d in flow.loops() if d.parallel)
        source, _ = emit_nest_kernel_source(
            outer, analyzed, flow, use_windows=False, variant="flat"
        )
        # rows of the flat space, clipped to the chunk at both ends
        assert "_row0, _off0 = divmod(_nlo, _n1)" in source
        assert "for _row in range(_row0, _row1 + 1):" in source
        assert "_v_I = _r + _lo0" in source
        # the innermost chain index runs as a NumPy span
        assert "_v_J = np.arange(_jlo, _jhi + 1)" in source

    def test_three_deep_flat_divmods_middle_index(self):
        analyzed, flow, _ = _setup(CUBE_SOURCE)
        outer = next(d for d in flow.loops() if d.parallel)
        source, _ = emit_nest_kernel_source(
            outer, analyzed, flow, use_windows=False, variant="flat"
        )
        assert "_v_J = _r % _n1 + _lo1" in source
        assert "_r //= _n1" in source
        assert "_v_K = np.arange(_jlo, _jhi + 1)" in source

    def test_full_variant_unchanged_shape(self):
        analyzed, flow, _ = _setup(SCALE_SOURCE)
        outer = next(d for d in flow.loops() if d.parallel)
        source, _ = emit_nest_kernel_source(
            outer, analyzed, flow, use_windows=False, variant="full"
        )
        assert "for _v_I in range(_nlo, _nhi + 1):" in source
        assert "_row" not in source

    def test_unknown_variant_rejected(self):
        from repro.runtime.kernels.emit import KernelError

        analyzed, flow, _ = _setup(SCALE_SOURCE)
        outer = next(d for d in flow.loops() if d.parallel)
        with pytest.raises(KernelError, match="unknown nest-kernel variant"):
            emit_nest_kernel_source(
                outer, analyzed, flow, use_windows=False, variant="diagonal"
            )

    def test_cache_keys_variants_separately(self):
        analyzed, flow, _ = _setup(SCALE_SOURCE)
        outer = next(d for d in flow.loops() if d.parallel)
        cache = KernelCache(analyzed, flow)
        full = cache.nest_kernel_for(outer, False)
        flat = cache.nest_kernel_for(outer, False, variant="flat")
        assert full is not None and flat is not None
        assert full is not flat
        assert cache.nest_kernel_for(outer, False, variant="flat") is flat


class TestPlannerChoice:
    def test_auto_still_prefers_vectorized_small(self):
        """Collapse must not leak into configurations it cannot win."""
        analyzed, flow, _ = _setup(SCALE_SOURCE)
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="auto", workers=2),
            {"r": 8, "c": 8}, cpu_count=2,
        )
        assert all(lp.strategy != "collapse" for lp in plan.loops.values())

    def test_collapse_respects_kernels_off(self):
        analyzed, flow, _ = _setup(SCALE_SOURCE)
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="process", workers=8, use_kernels=False),
            {"r": 4, "c": 4096}, cpu_count=8,
        )
        assert all(lp.strategy != "collapse" for lp in plan.loops.values())
