"""The scan strategy at the plan layer: golden forced-plan texts (part of
the ``repro plan`` interface), the merit decision at realistic sizes, the
float-reassociation gate, composition with the pipeline engine, and the
pricing provenance lines ``plan.explain()`` prints."""

import textwrap

import pytest

from repro.core.recurrences import (
    RECURRENCE_WORKLOADS,
    ilinrec_analyzed,
    isum_analyzed,
    scan_analyzed,
)
from repro.plan.ir import PlanError
from repro.plan.planner import build_plan, forced_plan, valid_strategies
from repro.runtime.executor import ExecutionOptions
from repro.schedule.scheduler import schedule_module

SCAN_WORKLOADS = [w for w in RECURRENCE_WORKLOADS
                  if w[0] in ("isum", "runmax", "ilinrec")]

GOLDEN_FORCED = {
    "isum": """\
        plan ISum: backend=threaded workers=4 kernels=native windows=off [pinned]
        eq.1 [kernel=scalar]
        DO I -> scan x4; trip 64; forced +-scan
            eq.2 [kernel=native (scan phases)]""",
    "runmax": """\
        plan RunMax: backend=threaded workers=4 kernels=native windows=off [pinned]
        eq.1 [kernel=scalar]
        DO I -> scan x4; trip 64; forced max-scan
            eq.2 [kernel=native (scan phases)]""",
    "ilinrec": """\
        plan ILinRec: backend=threaded workers=4 kernels=native windows=off [pinned]
        eq.1 [kernel=scalar]
        DO I -> scan x4; trip 64; forced linear recurrence
            eq.2 [kernel=native (scan phases)]""",
}


class TestGoldenScanPlans:
    @pytest.mark.parametrize(
        "workload", SCAN_WORKLOADS, ids=[w[0] for w in SCAN_WORKLOADS]
    )
    def test_forced_scan_text(self, workload):
        name, analyzed_fn, args_fn, _ = workload
        analyzed = analyzed_fn()
        scalars = {k: v for k, v in args_fn().items() if isinstance(v, int)}
        plan = forced_plan(
            analyzed, schedule_module(analyzed), "threaded",
            ExecutionOptions(workers=4), scalars, default="scan",
        )
        assert plan.pretty() == textwrap.dedent(GOLDEN_FORCED[name])


class TestScanMerit:
    def test_auto_picks_scan_at_large_trip(self):
        analyzed = ilinrec_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 50_000}, cpu_count=4,
        )
        assert ("I", "scan") in plan.strategies()
        (note,) = plan.provenance["scan_loops"]
        assert note["chosen"] and note["why"] == "blocked scan is cheaper"
        assert note["scan_cycles"] < note["serial_cycles"]
        # The seq fused-kernel comparator is recorded alongside.
        assert note["seq_cycles"] is not None

    def test_small_trip_stays_in_order(self):
        analyzed = ilinrec_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 64}, cpu_count=4,
        )
        assert ("I", "serial") in plan.strategies()
        (note,) = plan.provenance["scan_loops"]
        assert not note["chosen"]
        assert note["why"] == "in-order walk is cheaper"

    def test_serial_backend_never_scans_on_merit(self):
        analyzed = ilinrec_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="serial"),
            {"n": 50_000}, cpu_count=4,
        )
        assert ("I", "serial") in plan.strategies()
        (note,) = plan.provenance["scan_loops"]
        assert "no scan engine" in note["why"]

    def test_auto_with_scan_strategy_picks_a_pool_backend(self):
        # backend=auto + strategy=scan narrows the candidates to the
        # backends that own the scan engine.
        analyzed = isum_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="auto", workers=4, strategy="scan"),
            {"n": 50_000}, cpu_count=4,
        )
        assert plan.backend in ("threaded", "free-threading")
        assert ("I", "scan") in plan.strategies()

    def test_explain_prints_the_scan_verdict(self):
        analyzed = ilinrec_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 50_000}, cpu_count=4,
        )
        text = plan.explain()
        assert "scan loop" in text
        assert "linrec" in text
        assert "chosen" in text

    def test_valid_strategies_offers_scan_for_bit_exact_loops(self):
        analyzed = isum_analyzed()
        flow = schedule_module(analyzed)
        (do_loop,) = [d for d in flow.loops() if not d.parallel]
        assert valid_strategies(analyzed, flow, do_loop) == ["serial", "scan"]

    def test_valid_strategies_excludes_gated_float_ops(self):
        # Float linrec needs allow_reassoc: valid_strategies (the hard
        # per-path force menu, which carries no options) must not offer it.
        analyzed = scan_analyzed()
        flow = schedule_module(analyzed)
        (do_loop,) = [d for d in flow.loops() if not d.parallel]
        assert valid_strategies(analyzed, flow, do_loop) == ["serial"]

    def test_per_path_scan_force_on_doall_raises(self):
        analyzed = scan_analyzed()
        flow = schedule_module(analyzed)
        doall_path = next(
            flow.path_of(d) for d in flow.loops() if d.parallel
        )
        with pytest.raises(PlanError, match="sequential DO"):
            forced_plan(
                analyzed, flow, "threaded", ExecutionOptions(workers=4),
                {"n": 64}, overrides={doall_path: "scan"},
            )


class TestPipelineComposition:
    def test_scan_head_stage_under_allow_reassoc(self):
        # The float linrec head of the Scan workload's pipeline group
        # converts to a scan stage once reassociation is allowed and the
        # trip is large enough for the blocked scan to beat streaming.
        analyzed = scan_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4,
                             allow_reassoc=True),
            {"n": 2_000_000}, cpu_count=4,
        )
        head = plan.loops[(1,)]
        assert head.strategy == "pipeline"
        kinds = [s.kind for s in head.stages]
        assert kinds == ["scan", "replicated"]
        assert "scan x4(eq.2)" in plan.pretty()

    def test_no_reassoc_keeps_the_sequential_stage(self):
        analyzed = scan_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 2_000_000}, cpu_count=4,
        )
        head = plan.loops[(1,)]
        assert head.strategy == "pipeline"
        kinds = [s.kind for s in head.stages]
        assert kinds == ["sequential", "replicated"]


class TestKernelGates:
    def test_kernels_off_rejects_scan(self):
        analyzed = isum_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4,
                             use_kernels=False, strategy="scan"),
            {"n": 50_000}, cpu_count=4,
        )
        assert ("I", "serial") in plan.strategies()
        (note,) = plan.provenance["scan_loops"]
        assert note["why"] == "kernels off"

    def test_numpy_tier_plans_nest_kernel_label(self):
        analyzed = isum_analyzed()
        plan = forced_plan(
            analyzed, schedule_module(analyzed), "threaded",
            ExecutionOptions(workers=4, kernel_tier="numpy"),
            {"n": 64}, default="scan",
        )
        assert "eq.2 [kernel=nest (scan phases)]" in plan.pretty()

    def test_unrecognized_do_loop_keeps_serial_plan(self):
        # The coupled recurrence (two equations in the DO body) must plan
        # exactly as before — no scan note, no text churn.
        from repro.core.recurrences import coupled_analyzed

        analyzed = coupled_analyzed()
        plan = build_plan(
            analyzed, schedule_module(analyzed),
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 50_000}, cpu_count=4,
        )
        assert plan.provenance["scan_loops"] == []
