"""Planner integration of fission: golden plan texts, merit competition
against the unfissioned plan, provenance (taken and rejected), the
``--no-fission`` escape hatch, and forced-strategy validation."""

import pytest

from repro.core.recurrences import coupled_analyzed, mixed_analyzed
from repro.graph.build import build_dependency_graph
from repro.plan.ir import PlanError
from repro.plan.planner import build_plan, forced_plan, valid_strategies
from repro.ps.parser import parse_program
from repro.ps.semantics import analyze_program
from repro.runtime.executor import ExecutionOptions
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_module

POISONED_PROGRAM = """\
Scale: module (v: int): [w: int];
define
    w = v * 3;
end Scale;

Body: module (X: array[1 .. n] of int; n: int):
      [Y: array[1 .. n] of int; Z: array[1 .. n] of int];
type
    I = 1 .. n;
define
    Y[I] = Scale(X[I]);
    Z[I] = X[I] * X[I] + 2;
end Body;
"""


def _merged(analyzed):
    graph = build_dependency_graph(analyzed)
    return merge_loops(schedule_module(analyzed, graph), graph)


def _mixed():
    analyzed = mixed_analyzed()
    return analyzed, _merged(analyzed)


GOLDEN_FORCED = """\
plan Mixed: backend=threaded workers=4 kernels=native windows=off [pinned]
eq.1 [kernel=scalar]
eq.2 [kernel=scalar]
eq.3 [kernel=scalar]
DO I -> fission x3; trip 64; forced dependence split
    DO I -> serial; trip 64
        eq.4 [kernel=scalar]
    DO I -> serial; trip 64
        eq.5 [kernel=scalar]
    DO I -> serial; trip 64
        eq.6 [kernel=scalar]"""

GOLDEN_MERIT = """\
plan Mixed: backend=threaded workers=4 kernels=native windows=off [pinned]
eq.1 [kernel=scalar]
eq.2 [kernel=scalar]
eq.3 [kernel=scalar]
DO I -> fission x3; trip 200000; dependence split
    DO I -> pipeline x3; stages 3 [seq(eq.4) | seq(eq.5) | seq(eq.6)]; block 12500; trip 200000; decoupled sibling run
        eq.4 [kernel=native]
    DO I -> pipeline; trip 200000; stage 2/3
        eq.5 [kernel=native]
    DO I -> pipeline; trip 200000; stage 3/3
        eq.6 [kernel=native]"""


class TestGoldenFissionPlans:
    def test_forced_fission_text(self):
        analyzed, chart = _mixed()
        plan = build_plan(
            analyzed, chart,
            ExecutionOptions(backend="threaded", workers=4,
                             strategy="fission"),
            {"n": 64}, cpu_count=4,
        )
        assert plan.pretty() == GOLDEN_FORCED

    def test_merit_fission_text_with_pipelined_replicas(self):
        # At a long trip the split wins on price alone, and the replica
        # run decouples into a three-stage pipeline — the transforms
        # compose: fission exposes the siblings, pipeline decouples them.
        analyzed, chart = _mixed()
        plan = build_plan(
            analyzed, chart,
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 200000}, cpu_count=4,
        )
        assert plan.pretty() == GOLDEN_MERIT


class TestFissionDecision:
    def test_merit_provenance_fields(self):
        analyzed, chart = _mixed()
        plan = build_plan(
            analyzed, chart,
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 200000}, cpu_count=4,
        )
        (note,) = plan.provenance["fission_loops"]
        assert note["chosen"] and note["why"] == "split pieces are cheaper"
        assert note["parts"] == 3
        assert note["pieces"] == ["DO(eq.4)", "DO(eq.5)", "DO(eq.6)"]
        assert note["fission_cycles"] < note["unfissioned_cycles"]
        assert "fission @" in plan.explain()

    def test_short_trip_keeps_the_unfissioned_plan(self):
        # At trip 64 the split's replica loops only add overhead: auto
        # pricing must reject it and say why.
        analyzed, chart = _mixed()
        plan = build_plan(
            analyzed, chart,
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 64}, cpu_count=4,
        )
        assert "fission" not in [s for _, s in plan.strategies()]
        (note,) = plan.provenance["fission_loops"]
        assert not note["chosen"]
        assert note["why"] == "unfissioned plan is cheaper"

    def test_no_fission_escape_hatch(self):
        analyzed, chart = _mixed()
        plan = build_plan(
            analyzed, chart,
            ExecutionOptions(backend="threaded", workers=4,
                             use_fission=False),
            {"n": 200000}, cpu_count=4,
        )
        assert "fission" not in [s for _, s in plan.strategies()]
        assert not plan.provenance.get("fission_loops")

    def test_soft_force_degrades_on_unsplittable_loops(self):
        # The coupled recurrence is one dependence group: a soft
        # ``--strategy fission`` plans normally instead of raising.
        analyzed = coupled_analyzed()
        chart = schedule_module(analyzed)
        plan = build_plan(
            analyzed, chart,
            ExecutionOptions(backend="threaded", workers=4,
                             strategy="fission"),
            {"n": 64}, cpu_count=4,
        )
        assert "fission" not in [s for _, s in plan.strategies()]

    def test_hard_pin_on_unsplittable_loop_raises(self):
        analyzed = coupled_analyzed()
        chart = schedule_module(analyzed)
        loop = next(d for d in chart.loops() if not d.parallel)
        path = chart.path_of(loop)
        with pytest.raises(PlanError, match="cannot force 'fission'"):
            forced_plan(
                analyzed, chart, "threaded", scalar_env={"n": 64},
                overrides={path: "fission"},
            )

    def test_window_mode_hazard_degrades_softly(self):
        # The Mixed targets are results (never windowed), so build a
        # windowed variant: a local accumulator consumed only at [n].
        source = """\
WinMix: module (X: array[1 .. n] of int; n: int):
        [R: array[0 .. n] of int; Y: int];
type
    I = 1 .. n;
var
    U: array [0 .. n] of int;
define
    R[0] = 0;
    U[0] = 0;
    R[I] = R[I-1] + X[I];
    U[I] = U[I-1] + X[I];
    Y = U[n];
end WinMix;
"""
        from repro.ps.parser import parse_module
        from repro.ps.semantics import analyze_module

        analyzed = analyze_module(parse_module(source))
        chart = _merged(analyzed)
        for use_windows, expect in ((False, True), (True, False)):
            plan = build_plan(
                analyzed, chart,
                ExecutionOptions(backend="threaded", workers=4,
                                 strategy="fission",
                                 use_windows=use_windows),
                {"n": 64}, cpu_count=4,
            )
            has = "fission" in [s for _, s in plan.strategies()]
            assert has == expect
        # The window-mode rejection lands in the provenance.
        plan = build_plan(
            analyzed, chart,
            ExecutionOptions(backend="threaded", workers=4,
                             strategy="fission", use_windows=True),
            {"n": 64}, cpu_count=4,
        )
        (note,) = plan.provenance["fission_loops"]
        assert not note["chosen"]
        assert "windowed array U" in note["why"]

    def test_valid_strategies_lists_fission(self):
        analyzed, chart = _mixed()
        opts = ExecutionOptions(backend="threaded", workers=4)
        loop = next(d for d in chart.loops())
        assert "fission" in valid_strategies(analyzed, chart, loop, opts)
        unmerged = schedule_module(analyzed)
        single = next(d for d in unmerged.loops())
        assert "fission" not in valid_strategies(
            analyzed, unmerged, single, opts
        )

    def test_fission_with_kernels_off_stays_buildable(self):
        analyzed, chart = _mixed()
        plan = build_plan(
            analyzed, chart,
            ExecutionOptions(backend="serial", strategy="fission",
                             use_kernels=False),
            {"n": 64}, cpu_count=4,
        )
        assert "fission" in [s for _, s in plan.strategies()]


class TestSlowLoopProvenance:
    def test_unkernelizable_equation_is_named_with_its_reason(self):
        program = analyze_program(parse_program(POISONED_PROGRAM))
        body = program["Body"]
        chart = _merged(body)
        plan = build_plan(
            body, chart,
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 1000}, cpu_count=4,
        )
        (note,) = plan.provenance["slow_loops"]
        assert note["label"] == "eq.1"
        assert note["reason"] == (
            "calls module Scale with index-dependent arguments"
        )
        assert "slow loop @" in plan.explain()
        assert "eq.1 not kernelizable" in plan.explain()

    def test_fission_isolation_is_reported_when_taken(self):
        # Force the split: the note must say the offender now runs in
        # its own replica loop.
        program = analyze_program(parse_program(POISONED_PROGRAM))
        body = program["Body"]
        chart = _merged(body)
        plan = build_plan(
            body, chart,
            ExecutionOptions(backend="threaded", workers=4,
                             strategy="fission"),
            {"n": 1000}, cpu_count=4,
        )
        (note,) = plan.provenance["slow_loops"]
        assert note["fission"] == "split: the offender runs in its own loop"

    def test_clean_modules_report_no_slow_loops(self):
        analyzed, chart = _mixed()
        plan = build_plan(
            analyzed, chart,
            ExecutionOptions(backend="threaded", workers=4),
            {"n": 64}, cpu_count=4,
        )
        assert plan.provenance["slow_loops"] == []
