"""Planner edge cases surfaced by review: GIL-aware process selection,
in-process callee plans, plan re-binding, and auto always being measurable."""

import numpy as np

from repro.core.paper import jacobi_analyzed
from repro.plan.planner import build_plan
from repro.ps.parser import parse_program
from repro.ps.semantics import analyze_program
from repro.runtime.executor import ExecutionOptions, execute_program_module
from repro.schedule.scheduler import schedule_module

CALL_PROGRAM_SOURCE = """\
Scale: module (x: real): [y: real]; define y = x * 2.0; end Scale;
Use: module (A: array[1 .. n] of real; n: int): [B: array[1 .. n] of real];
type I = 1 .. n;
define B[I] = Scale(A[I]) + 1.0;
end Use;
"""


class TestGilAwareChunkCosts:
    def test_auto_picks_process_for_gil_bound_work(self):
        """A chunk-safe DOALL whose body is a per-element module call
        (vector-unsafe, non-kernelizable) holds the GIL — threads cannot
        help, forked processes can. With real cores available, auto must
        reach for the process backend; this is exactly the workload class
        the dominated-by-threaded cost model used to make unreachable."""
        program = analyze_program(parse_program(CALL_PROGRAM_SOURCE))
        use = program["Use"]
        flow = schedule_module(use)
        plan = build_plan(
            use, flow,
            ExecutionOptions(backend="auto", workers=8),
            {"n": 20000}, cpu_count=8,
        )
        assert plan.backend == "process"

    def test_numpy_bound_work_still_prefers_vectorized(self):
        """The preference holds on both kernel tiers: the calibrated
        native per-element cost is honest about large NumPy-bound sweeps
        being memory-bound either way, so auto keeps the vectorized
        backend rather than flipping to serial-with-native-nests."""
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        for tier in ("numpy", "native"):
            plan = build_plan(
                analyzed, flow,
                ExecutionOptions(backend="auto", workers=8, kernel_tier=tier),
                {"M": 30, "maxK": 8}, cpu_count=8,
            )
            assert plan.backend == "vectorized", tier

    def test_pinned_serial_plans_native_nests(self):
        """An explicit serial pin still lowers every fusable nest to the
        native tier — the label the runtime cache resolves."""
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="serial", workers=1),
            {"M": 30, "maxK": 8}, cpu_count=8,
        )
        assert all(e.kernel == "native" for e in plan.equations.values())
        numpy_plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="serial", workers=1, kernel_tier="numpy"),
            {"M": 30, "maxK": 8}, cpu_count=8,
        )
        assert all(e.kernel == "nest" for e in numpy_plan.equations.values())


class TestCalleePlansStayInProcess:
    def test_callee_memo_never_plans_a_pool(self):
        """Module calls fire per element; the callee's auto plan must stay
        on the in-process backends even when the caller runs a pool."""
        program = analyze_program(parse_program(CALL_PROGRAM_SOURCE))
        rng = np.random.default_rng(3)
        args = {"A": rng.random(8), "n": 8}
        out = execute_program_module(
            program, "Use", args,
            options=ExecutionOptions(backend="threaded", workers=4),
        )
        assert out["B"].shape == (8,)
        memo = program._plan_memo
        assert memo, "expected a memoized callee plan"
        for plan in memo.values():
            assert plan.backend in ("serial", "vectorized")


class TestPlanRebinding:
    def test_bind_is_idempotent_per_flowchart(self):
        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        plan = build_plan(
            analyzed, flow, ExecutionOptions(workers=2), {"M": 4, "maxK": 3}
        )
        index = plan._by_id
        plan.bind(flow)
        assert plan._by_id is index  # no rebuild on the same flowchart
        flow2 = schedule_module(analyzed)
        plan.bind(flow2)
        assert plan._by_id is not index
        doall = next(d for d in flow2.loops() if d.parallel)
        assert plan.loop_for(doall) is not None


class TestComparePlansAlwaysMeasuresAuto:
    def test_auto_backend_appended_to_candidates(self):
        from repro.machine.report import compare_plans

        analyzed = jacobi_analyzed()
        flow = schedule_module(analyzed)
        rng = np.random.default_rng(5)
        args = {"InitialA": rng.random((6, 6)), "M": 4, "maxK": 3}
        cmp = compare_plans(
            analyzed, flow, args, backends=["serial"], workers=1, repeats=1
        )
        assert cmp.auto_backend in [r["backend"] for r in cmp.rows]
        assert cmp.auto_seconds > 0
        assert cmp.to_dict()["auto_backend"] == cmp.auto_backend
