"""Shared workloads for the plan-layer tests: the five paper workloads the
parity and kernel suites already exercise (Jacobi, naive Gauss-Seidel, the
hyperplane-transformed Gauss-Seidel, the alignment DP table, and the
integer lattice-path count)."""

import numpy as np
import pytest

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.schedule.scheduler import schedule_module

DP_SOURCE = """\
Align: module (CostA: array[1 .. n] of real;
               CostB: array[1 .. n] of real;
               gap: real; n: int):
       [score: real];
type
    I, J = 1 .. n;
var
    D: array [0 .. n, 0 .. n] of real;
define
    D[0] = 0.0;
    D[I, 0] = I * gap;
    D[I, J] = min(D[I-1, J-1] + abs(CostA[I] - CostB[J]),
                  min(D[I-1, J] + gap, D[I, J-1] + gap));
    score = D[n, n];
end Align;
"""

PATHS_INT_SOURCE = """\
Paths: module (n: int): [Y: array[0 .. n] of int];
type
    I = 1 .. n; J = 1 .. n;
var
    W: array [0 .. n, 0 .. n] of int;
define
    W[0] = 1;
    W[I, 0] = 1;
    W[I, J] = W[I-1, J] + W[I, J-1];
    Y = W[n];
end Paths;
"""


def _workloads():
    rng = np.random.default_rng(7)
    jac = jacobi_analyzed()
    yield (
        "jacobi", jac, schedule_module(jac),
        {"InitialA": rng.random((10, 10)), "M": 8, "maxK": 4}, "newA",
    )
    gs = gauss_seidel_analyzed()
    yield (
        "gauss_seidel", gs, schedule_module(gs),
        {"InitialA": rng.random((10, 10)), "M": 8, "maxK": 4}, "newA",
    )
    hgs = hyperplane_transform(gauss_seidel_analyzed()).transformed
    yield (
        "hyperplane_gs", hgs, schedule_module(hgs),
        {"InitialA": rng.random((10, 10)), "M": 8, "maxK": 4}, "newA",
    )
    dp = analyze_module(parse_module(DP_SOURCE))
    yield (
        "dp", dp, schedule_module(dp),
        {"CostA": rng.random(6), "CostB": rng.random(6), "gap": 0.4, "n": 6},
        "score",
    )
    paths = analyze_module(parse_module(PATHS_INT_SOURCE))
    yield ("paths_int", paths, schedule_module(paths), {"n": 6}, "Y")


WORKLOADS = list(_workloads())


@pytest.fixture(params=WORKLOADS, ids=[w[0] for w in WORKLOADS])
def workload(request):
    return request.param
