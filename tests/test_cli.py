"""CLI tests (direct invocation of repro.cli.main)."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.paper import RELAXATION_GAUSS_SEIDEL_SOURCE, RELAXATION_JACOBI_SOURCE


@pytest.fixture()
def jacobi_file(tmp_path):
    path = tmp_path / "relaxation.ps"
    path.write_text(RELAXATION_JACOBI_SOURCE)
    return str(path)


@pytest.fixture()
def gs_file(tmp_path):
    path = tmp_path / "gs.ps"
    path.write_text(RELAXATION_GAUSS_SEIDEL_SOURCE)
    return str(path)


class TestSchedule:
    def test_prints_figure6(self, jacobi_file, capsys):
        assert main(["schedule", jacobi_file]) == 0
        out = capsys.readouterr().out
        assert "DO K (" in out
        assert "DOALL I (" in out
        assert "window of 2" in out

    def test_missing_file(self, capsys):
        assert main(["schedule", "/nonexistent.ps"]) == 1
        assert "error" in capsys.readouterr().err


class TestPlan:
    def test_prints_auto_plan(self, jacobi_file, capsys):
        assert main(["plan", jacobi_file, "--set", "M=8", "--set", "maxK=4",
                     "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "plan Relaxation:" in out
        assert "[auto]" in out
        assert "trip 10" in out

    def test_pinned_backend_plan(self, jacobi_file, capsys):
        assert main(["plan", jacobi_file, "--backend", "serial",
                     "--set", "M=8", "--set", "maxK=4"]) == 0
        out = capsys.readouterr().out
        assert "backend=serial" in out
        assert "[pinned]" in out
        assert "nest" in out

    def test_cycles_flag(self, jacobi_file, capsys):
        assert main(["plan", jacobi_file, "--set", "M=8", "--set", "maxK=4",
                     "--cycles"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_no_kernels_plan(self, jacobi_file, capsys):
        assert main(["plan", jacobi_file, "--no-kernels",
                     "--set", "M=8", "--set", "maxK=4"]) == 0
        out = capsys.readouterr().out
        assert "kernels=off" in out
        assert "evaluator" in out

    def test_kernel_tier_flag(self, jacobi_file, capsys):
        assert main(["plan", jacobi_file, "--kernel-tier", "numpy",
                     "--backend", "serial",
                     "--set", "M=8", "--set", "maxK=4"]) == 0
        out = capsys.readouterr().out
        assert "kernels=numpy" in out
        assert "kernel=native" not in out
        assert main(["plan", jacobi_file, "--backend", "serial",
                     "--set", "M=8", "--set", "maxK=4"]) == 0
        assert "kernels=native" in capsys.readouterr().out

    def test_plan_save_persists_artifacts(
        self, jacobi_file, capsys, tmp_path, monkeypatch
    ):
        cache = tmp_path / "native-cache"
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(cache))
        assert main(["plan", jacobi_file, "--backend", "serial",
                     "--set", "M=8", "--set", "maxK=4", "--save"]) == 0
        err = capsys.readouterr().err
        assert "saved plan" in err
        saved = list(cache.glob("plans/Relaxation-*/plan.txt"))
        assert len(saved) == 1
        assert "plan Relaxation:" in saved[0].read_text()
        assert list(saved[0].parent.glob("nest-*.c"))


class TestGraph:
    def test_text(self, jacobi_file, capsys):
        assert main(["graph", jacobi_file]) == 0
        out = capsys.readouterr().out
        assert "A -> eq.3" in out

    def test_dot(self, jacobi_file, capsys):
        assert main(["graph", "--dot", jacobi_file]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestCompile:
    def test_emit_c(self, jacobi_file, capsys):
        assert main(["compile", jacobi_file, "--emit", "c"]) == 0
        out = capsys.readouterr().out
        assert "void Relaxation(" in out
        assert "/* concurrent for */" in out

    def test_emit_python(self, jacobi_file, capsys):
        assert main(["compile", jacobi_file, "--emit", "python"]) == 0
        assert "def Relaxation(" in capsys.readouterr().out

    def test_emit_flowchart(self, jacobi_file, capsys):
        assert main(["compile", jacobi_file, "--emit", "flowchart"]) == 0
        assert "DOALL" in capsys.readouterr().out

    def test_hyperplane_flag(self, gs_file, capsys):
        assert main(["compile", gs_file, "--hyperplane", "--emit", "flowchart"]) == 0
        out = capsys.readouterr().out
        assert "DO Kp (" in out
        assert "DOALL Ip (" in out

    def test_no_windows(self, jacobi_file, capsys):
        assert main(["compile", jacobi_file, "--no-windows"]) == 0
        assert "% 2" not in capsys.readouterr().out


class TestTransform:
    def test_report(self, gs_file, capsys):
        assert main(["transform", gs_file]) == 0
        out = capsys.readouterr().out
        assert "time vector         : (2, 1, 1)" in out
        assert "a > 0" in out
        assert "recurrence window   : 3" in out

    def test_emit_module(self, gs_file, capsys):
        assert main(["transform", gs_file, "--emit-module"]) == 0
        assert "RelaxationHyper: module" in capsys.readouterr().out

    def test_non_recursive_array_fails_cleanly(self, gs_file, capsys):
        assert main(["transform", gs_file, "--array", "InitialA"]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_run_with_random_input(self, jacobi_file, capsys):
        rc = main(["run", jacobi_file, "--set", "M=4", "--set", "maxK=3"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "newA =" in captured.out
        assert "filled InitialA" in captured.err

    def test_run_with_loaded_input(self, jacobi_file, tmp_path, capsys):
        m = 4
        arr = np.ones((m + 2, m + 2))
        npy = tmp_path / "init.npy"
        np.save(npy, arr)
        rc = main(
            ["run", jacobi_file, "--set", "M=4", "--set", "maxK=3",
             "--load", f"InitialA={npy}"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "newA =" in out
        # All-ones input is a fixed point of the relaxation.
        assert "1." in out

    def test_scalar_and_windows_flags(self, jacobi_file, capsys):
        rc = main(
            ["run", jacobi_file, "--set", "M=3", "--set", "maxK=3",
             "--scalar", "--windows"]
        )
        assert rc == 0

    @pytest.mark.parametrize("backend", ["serial", "vectorized", "threaded", "process"])
    def test_backend_flag(self, jacobi_file, backend, capsys):
        rc = main(
            ["run", jacobi_file, "--set", "M=3", "--set", "maxK=3",
             "--backend", backend, "--workers", "2"]
        )
        assert rc == 0
        assert "newA =" in capsys.readouterr().out

    def test_backend_flag_rejects_unknown(self, jacobi_file, capsys):
        with pytest.raises(SystemExit):
            main(["run", jacobi_file, "--set", "M=3", "--set", "maxK=3",
                  "--backend", "gpu"])

    def test_scalar_conflicts_with_parallel_backend(self, jacobi_file, capsys):
        rc = main(["run", jacobi_file, "--set", "M=3", "--set", "maxK=3",
                   "--scalar", "--backend", "threaded"])
        assert rc == 1
        assert "conflicts" in capsys.readouterr().err

    def test_scalar_with_serial_backend_ok(self, jacobi_file, capsys):
        rc = main(["run", jacobi_file, "--set", "M=3", "--set", "maxK=3",
                   "--scalar", "--backend", "serial"])
        assert rc == 0

    def test_bad_set_syntax(self, jacobi_file, capsys):
        assert main(["run", jacobi_file, "--set", "M"]) == 1
