"""Tests for the programmatic module builder (the text-free front end)."""

import numpy as np
import pytest

from repro.errors import ParseError, SemanticError
from repro.ps.builder import ModuleBuilder, relaxation_builder
from repro.ps.printer import format_module
from repro.runtime.executor import execute_module
from repro.schedule.scheduler import schedule_module


class TestBuilder:
    def test_simple_module(self):
        b = ModuleBuilder("Double")
        b.param("x", "int").result("y", "int").equation("y = x * 2")
        analyzed = b.analyze()
        assert analyzed.name == "Double"
        out = execute_module(analyzed, {"x": 21})
        assert out["y"] == 42

    def test_subrange_accepts_ints_and_strings(self):
        b = ModuleBuilder("T")
        b.param("n", "int").result("y", "real")
        b.subrange("I", 0, "n")
        b.var("F", "array[I] of real")
        b.equation("F[I] = I * 1.0")
        b.equation("y = F[n]")
        out = execute_module(b.analyze(), {"n": 5})
        assert out["y"] == 5.0

    def test_define_with_ast_rhs(self):
        from repro.ps.parser import parse_expression

        b = ModuleBuilder("T")
        b.param("x", "real").result("y", "real")
        b.define("y", parse_expression("x + 1.0"))
        out = execute_module(b.analyze(), {"x": 1.0})
        assert out["y"] == 2.0

    def test_multi_target_lhs(self):
        b = ModuleBuilder("T")
        b.param("x", "int")
        b.result("q", "int").result("r", "int")
        b.define("q, r", "DivMod(x, 3)")
        module = b.build()
        assert len(module.equations[0].lhs) == 2

    def test_equation_trailing_semicolon_optional(self):
        b = ModuleBuilder("T").param("x", "int").result("y", "int")
        b.equation("y = x;")
        assert b.analyze().equations[0].label == "eq.1"

    def test_bad_equation_rejected(self):
        b = ModuleBuilder("T").param("x", "int").result("y", "int")
        with pytest.raises(ParseError):
            b.equation("y = x extra")

    def test_semantic_errors_surface(self):
        b = ModuleBuilder("T").param("x", "int").result("y", "int")
        b.equation("y = nonexistent")
        with pytest.raises(SemanticError):
            b.analyze()


class TestRelaxationBuilder:
    def test_matches_parsed_jacobi(self):
        from repro.core.paper import jacobi_analyzed

        built = relaxation_builder(gauss_seidel=False).analyze()
        parsed = jacobi_analyzed()
        flow_b = schedule_module(built)
        flow_p = schedule_module(parsed)
        assert flow_b.shape() == flow_p.shape()
        assert flow_b.window_of("A") == flow_p.window_of("A")

    def test_gauss_seidel_variant(self):
        built = relaxation_builder(gauss_seidel=True).analyze()
        flow = schedule_module(built)
        assert ("DO", "I") in flow.loop_kinds()

    def test_builder_module_executes(self):
        analyzed = relaxation_builder().analyze()
        rng = np.random.default_rng(0)
        m, maxk = 4, 3
        out = execute_module(
            analyzed, {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
        )
        assert out["newA"].shape == (m + 2, m + 2)

    def test_builder_output_is_printable(self):
        text = format_module(relaxation_builder().build())
        assert "Relaxation: module" in text
