"""Unit tests for semantic analysis: types, dimensions, normalisation."""

import pytest

from repro.errors import CoverageError, SemanticError
from repro.ps.ast import Index, IntLit
from repro.ps.parser import parse_module, parse_program
from repro.ps.semantics import analyze_module, analyze_program
from repro.ps.types import ArrayType, BoolType, RealType


def analyze(src: str):
    return analyze_module(parse_module(src))


class TestFigure1Analysis:
    @pytest.fixture(scope="class")
    def mod(self):
        from repro.core.paper import RELAXATION_JACOBI_SOURCE

        return analyze(RELAXATION_JACOBI_SOURCE)

    def test_symbols(self, mod):
        assert set(mod.table.symbols) == {"InitialA", "M", "maxK", "newA", "A"}

    def test_array_type_flattened(self, mod):
        # A: array[1..maxK] of array[I,J] of real has three dimensions
        # ("dimensionality which is the sum of subscripts and superscripts").
        a = mod.symbol("A").type
        assert isinstance(a, ArrayType)
        assert a.rank == 3
        assert a.element == RealType

    def test_eq1_dims_are_implicit_I_J(self, mod):
        eq1 = mod.equations[0]
        assert [d.index for d in eq1.dims] == ["I", "J"]
        assert all(d.implicit for d in eq1.dims)

    def test_eq1_target_normalised(self, mod):
        eq1 = mod.equations[0]
        t = eq1.targets[0]
        assert t.name == "A"
        assert len(t.subscripts) == 3
        assert isinstance(t.subscripts[0], IntLit)
        assert [s.ident for s in t.subscripts[1:]] == ["I", "J"]

    def test_eq1_rhs_normalised_to_indexed_reference(self, mod):
        eq1 = mod.equations[0]
        assert isinstance(eq1.rhs, Index)
        assert eq1.rhs.base.ident == "InitialA"
        assert [s.ident for s in eq1.rhs.subscripts] == ["I", "J"]

    def test_eq2_dims(self, mod):
        eq2 = mod.equations[1]
        assert [d.index for d in eq2.dims] == ["I", "J"]

    def test_eq2_ref_has_maxk_then_identity(self, mod):
        eq2 = mod.equations[1]
        ref = [r for r in eq2.refs if r.name == "A"][0]
        assert len(ref.subscripts) == 3
        assert ref.subscripts[0].ident == "maxK"

    def test_eq3_dims_explicit(self, mod):
        eq3 = mod.equations[2]
        assert [d.index for d in eq3.dims] == ["K", "I", "J"]
        assert not any(d.implicit for d in eq3.dims)

    def test_eq3_refs(self, mod):
        eq3 = mod.equations[2]
        a_refs = [r for r in eq3.refs if r.name == "A"]
        assert len(a_refs) == 5  # then-branch + four stencil neighbours
        m_refs = [r for r in eq3.refs if r.name == "M"]
        assert len(m_refs) == 2  # I = M+1 and J = M+1

    def test_eq3_bound_uses(self, mod):
        eq3 = mod.equations[2]
        assert "maxK" in eq3.bound_uses  # K = 2 .. maxK
        assert "M" in eq3.bound_uses  # I, J = 0 .. M+1

    def test_rhs_type_real(self, mod):
        assert mod.equations[2].rhs_type == RealType


class TestTypeChecking:
    def test_bool_condition_required(self):
        with pytest.raises(SemanticError, match="condition"):
            analyze("T: module (x: int): [y: int];\ndefine y = if x then 1 else 2;\nend T;")

    def test_arithmetic_on_bool_rejected(self):
        with pytest.raises(SemanticError):
            analyze("T: module (x: int): [y: int];\ndefine y = true + 1;\nend T;")

    def test_branch_type_mismatch(self):
        with pytest.raises(SemanticError, match="branches"):
            analyze(
                "T: module (x: int): [y: int];\n"
                "define y = if x > 0 then 1 else true;\nend T;"
            )

    def test_branch_numeric_unification(self):
        m = analyze(
            "T: module (x: int): [y: real];\n"
            "define y = if x > 0 then 1 else 2.5;\nend T;"
        )
        assert m.equations[0].rhs_type == RealType

    def test_int_to_real_widening_allowed(self):
        analyze("T: module (x: int): [y: real];\ndefine y = x;\nend T;")

    def test_real_to_int_rejected(self):
        with pytest.raises(SemanticError, match="mismatch"):
            analyze("T: module (x: real): [y: int];\ndefine y = x;\nend T;")

    def test_division_yields_real(self):
        m = analyze("T: module (x: int): [y: real];\ndefine y = x / 2;\nend T;")
        assert m.equations[0].rhs_type == RealType

    def test_div_requires_int(self):
        with pytest.raises(SemanticError):
            analyze("T: module (x: real): [y: int];\ndefine y = x div 2;\nend T;")

    def test_undeclared_name(self):
        with pytest.raises(SemanticError, match="undeclared"):
            analyze("T: module (x: int): [y: int];\ndefine y = z;\nend T;")

    def test_subscript_must_be_integral(self):
        with pytest.raises(SemanticError, match="integral"):
            analyze(
                "T: module (A: array[I] of real): [y: real];\n"
                "type I = 0 .. 9;\ndefine y = A[1.5];\nend T;"
            )

    def test_too_many_subscripts(self):
        with pytest.raises(SemanticError, match="too many"):
            analyze(
                "T: module (A: array[I] of real): [y: real];\n"
                "type I = 0 .. 9;\ndefine y = A[1, 2];\nend T;"
            )

    def test_scalar_cannot_be_subscripted(self):
        with pytest.raises(SemanticError):
            analyze("T: module (x: int): [y: int];\ndefine y = x[1];\nend T;")

    def test_builtin_arity_checked(self):
        with pytest.raises(SemanticError, match="argument"):
            analyze("T: module (x: real): [y: real];\ndefine y = sqrt(x, x);\nend T;")

    def test_builtin_sqrt_is_real(self):
        m = analyze("T: module (x: int): [y: real];\ndefine y = sqrt(x);\nend T;")
        assert m.equations[0].rhs_type == RealType

    def test_record_field_access(self):
        m = analyze(
            "T: module (p: record x: real; y: real end): [d: real];\n"
            "define d = p.x * p.x + p.y * p.y;\nend T;"
        )
        refs = m.equations[0].refs
        assert all(r.name == "p" for r in refs)
        assert {r.fieldpath for r in refs} == {("x",), ("y",)}

    def test_missing_record_field(self):
        with pytest.raises(SemanticError, match="no field"):
            analyze(
                "T: module (p: record x: real end): [d: real];\n"
                "define d = p.z;\nend T;"
            )

    def test_enum_member_usable(self):
        m = analyze(
            "T: module (c: Color): [y: bool];\n"
            "type Color = (red, green, blue);\n"
            "define y = c = red;\nend T;"
        )
        assert m.equations[0].rhs_type == BoolType


class TestSingleAssignment:
    def test_param_cannot_be_defined(self):
        with pytest.raises(SemanticError, match="single"):
            analyze("T: module (x: int): [y: int];\ndefine x = 1; y = x;\nend T;")

    def test_scalar_double_definition(self):
        with pytest.raises(CoverageError):
            analyze("T: module (x: int): [y: int];\ndefine y = 1; y = 2;\nend T;")

    def test_same_constant_slice_twice(self):
        with pytest.raises(CoverageError, match="overlap"):
            analyze(
                "T: module (M: int): [y: real];\n"
                "type I = 0 .. M;\n"
                "var A: array [1 .. 5] of real;\n"
                "define A[1] = 0.0; A[1] = 1.0; y = A[5];\nend T;"
            )

    def test_disjoint_constant_slices_ok(self):
        analyze(
            "T: module (M: int): [y: real];\n"
            "var A: array [1 .. 2] of real;\n"
            "define A[1] = 0.0; A[2] = 1.0; y = A[2];\nend T;"
        )

    def test_constant_vs_literal_range_overlap(self):
        with pytest.raises(CoverageError, match="overlap"):
            analyze(
                "T: module (x: int): [y: real];\n"
                "type I = 1 .. 5;\n"
                "var A: array [1 .. 5] of real;\n"
                "define A[1] = 0.0; A[I] = 1.0; y = A[5];\nend T;"
            )

    def test_figure1_disjointness_decided(self):
        # A[1] vs A[K,...] with K = 2..maxK: lo bound 2 is a literal, so the
        # checker can prove disjointness even though maxK is symbolic.
        from repro.core.paper import RELAXATION_JACOBI_SOURCE

        mod = analyze(RELAXATION_JACOBI_SOURCE)
        assert not any("cannot prove" in w for w in mod.warnings)

    def test_undefined_result_rejected(self):
        with pytest.raises(CoverageError, match="no defining"):
            analyze("T: module (x: int): [y: int; z: int];\ndefine y = x;\nend T;")

    def test_undefined_local_rejected(self):
        with pytest.raises(CoverageError, match="no defining"):
            analyze(
                "T: module (x: int): [y: int];\nvar t: int;\ndefine y = x;\nend T;"
            )


class TestIndexVariables:
    def test_unbound_index_var_rejected(self):
        with pytest.raises(SemanticError, match="not bound"):
            analyze(
                "T: module (A: array[I] of real): [y: real];\n"
                "type I = 0 .. 9;\ndefine y = A[I];\nend T;"
            )

    def test_index_var_twice_on_lhs_rejected(self):
        with pytest.raises(SemanticError, match="twice"):
            analyze(
                "T: module (M: int): [y: real];\n"
                "type I = 0 .. M;\n"
                "var A: array[I, I] of real;\n"
                "define A[I, I] = 1.0; y = A[0, 0];\nend T;"
            )

    def test_elementwise_whole_array_equation(self):
        m = analyze(
            "T: module (X: array[I] of real): [y: array[I] of real];\n"
            "type I = 0 .. 9;\n"
            "define y = X;\nend T;"
        )
        eq = m.equations[0]
        assert [d.index for d in eq.dims] == ["I"]
        assert isinstance(eq.rhs, Index)

    def test_elementwise_array_arithmetic(self):
        m = analyze(
            "T: module (X: array[I] of real; Y: array[I] of real):\n"
            "   [s: array[I] of real];\n"
            "type I = 0 .. 9;\n"
            "define s = X + Y;\nend T;"
        )
        eq = m.equations[0]
        # Both operands normalised to X[I] + Y[I].
        assert isinstance(eq.rhs.left, Index)
        assert isinstance(eq.rhs.right, Index)

    def test_mixed_explicit_implicit_dims(self):
        m = analyze(
            "T: module (X: array[I,J] of real; n: int): [y: real];\n"
            "type I = 0 .. 9; J = 0 .. 9; K = 1 .. n;\n"
            "var B: array[K] of array[I,J] of real;\n"
            "define B[1] = X; B[K, I, J] = if K > 1 then B[K-1, I, J] else 0.0;\n"
            "y = B[n, 0, 0];\nend T;"
        )
        eq1 = m.equations[0]
        assert [d.index for d in eq1.dims] == ["I", "J"]
        assert len(eq1.targets[0].subscripts) == 3


class TestPrograms:
    def test_module_call(self):
        src = (
            "Inc: module (x: int): [y: int]; define y = x + 1; end Inc;\n"
            "Use: module (x: int): [y: int]; define y = Inc(Inc(x)); end Use;"
        )
        p = analyze_program(parse_program(src))
        assert p["Use"].equations[0].calls == ["Inc", "Inc"]

    def test_forward_call_rejected(self):
        src = (
            "Use: module (x: int): [y: int]; define y = Inc(x); end Use;\n"
            "Inc: module (x: int): [y: int]; define y = x + 1; end Inc;"
        )
        with pytest.raises(SemanticError, match="unknown"):
            analyze_program(parse_program(src))

    def test_call_arity_checked(self):
        src = (
            "Inc: module (x: int): [y: int]; define y = x + 1; end Inc;\n"
            "Use: module (x: int): [y: int]; define y = Inc(x, x); end Use;"
        )
        with pytest.raises(SemanticError, match="argument"):
            analyze_program(parse_program(src))

    def test_multi_result_call(self):
        src = (
            "DivMod: module (a: int; b: int): [q: int; r: int];\n"
            "define q = a div b; r = a mod b; end DivMod;\n"
            "Use: module (x: int): [s: int];\n"
            "var q: int; r: int;\n"
            "define q, r = DivMod(x, 3); s = q + r; end Use;"
        )
        p = analyze_program(parse_program(src))
        eq = p["Use"].equations[0]
        assert eq.atomic
        assert [t.name for t in eq.targets] == ["q", "r"]

    def test_multi_target_arity_mismatch(self):
        src = (
            "DivMod: module (a: int; b: int): [q: int; r: int];\n"
            "define q = a div b; r = a mod b; end DivMod;\n"
            "Use: module (x: int): [s: int];\n"
            "var q: int; r: int; t: int;\n"
            "define q, r, t = DivMod(x, 3); s = q; end Use;"
        )
        with pytest.raises(SemanticError, match="targets"):
            analyze_program(parse_program(src))

    def test_duplicate_module_rejected(self):
        src = (
            "A: module (x: int): [y: int]; define y = x; end A;\n"
            "A: module (x: int): [y: int]; define y = x; end A;"
        )
        with pytest.raises(SemanticError, match="duplicate"):
            analyze_program(parse_program(src))
