"""Printer tests: exact formatting plus hypothesis round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paper import RELAXATION_GAUSS_SEIDEL_SOURCE, RELAXATION_JACOBI_SOURCE
from repro.ps.ast import expr_equal
from repro.ps.parser import parse_expression, parse_module
from repro.ps.printer import format_expression, format_module


class TestExactFormatting:
    def test_simple_arithmetic(self):
        assert format_expression(parse_expression("a + b * c")) == "a + b * c"

    def test_parentheses_preserved_semantically(self):
        assert format_expression(parse_expression("(a + b) * c")) == "(a + b) * c"

    def test_redundant_parens_dropped(self):
        assert format_expression(parse_expression("(a * b) + c")) == "a * b + c"

    def test_left_assoc_subtraction(self):
        # a - (b - c) needs parens; (a - b) - c does not.
        assert format_expression(parse_expression("a - (b - c)")) == "a - (b - c)"
        assert format_expression(parse_expression("a - b - c")) == "a - b - c"

    def test_indexing(self):
        assert format_expression(parse_expression("A[K-1, I, J+1]")) == "A[K - 1, I, J + 1]"

    def test_if_expression(self):
        text = format_expression(parse_expression("if a then 1 else 2"))
        assert text == "if a then 1 else 2"

    def test_nested_if_parenthesised_inside_operator(self):
        e = parse_expression("1 + (if a then 2 else 3)")
        assert format_expression(e) == "1 + (if a then 2 else 3)"

    def test_unary_minus(self):
        assert format_expression(parse_expression("-x * y")) == "-x * y"
        assert format_expression(parse_expression("-(x * y)")) == "-(x * y)"

    def test_boolean_operators(self):
        e = parse_expression("a = 0 or b = 0 and not c")
        assert format_expression(e) == "a = 0 or b = 0 and not c"

    def test_call_and_fields(self):
        assert format_expression(parse_expression("min(p.x, q.y)")) == "min(p.x, q.y)"


# ---------------------------------------------------------------------------
# Random-expression round-trip property
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "x", "K", "I", "J", "A", "M"])


def _exprs():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=99).map(lambda v: str(v)),
        _names,
        st.just("true"),
        st.just("false"),
    )

    def extend(children):
        binop = st.sampled_from(
            ["+", "-", "*", "/", "div", "mod", "=", "<>", "<", "<=", ">", ">=", "and", "or"]
        )
        return st.one_of(
            st.tuples(children, binop, children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
            children.map(lambda c: f"(-{c})"),
            children.map(lambda c: f"(not {c})"),
            st.tuples(children, children, children).map(
                lambda t: f"(if {t[0]} then {t[1]} else {t[2]})"
            ),
            st.tuples(_names, children).map(lambda t: f"{t[0]}[{t[1]}]"),
            st.tuples(children, children).map(lambda t: f"min({t[0]}, {t[1]})"),
        )

    return st.recursive(leaves, extend, max_leaves=12)


class TestRoundTripProperties:
    @given(_exprs())
    @settings(max_examples=300, deadline=None)
    def test_parse_format_parse_fixed_point(self, text):
        """parse(format(parse(t))) is structurally equal to parse(t)."""
        ast1 = parse_expression(text)
        printed = format_expression(ast1)
        ast2 = parse_expression(printed)
        assert expr_equal(ast1, ast2), f"{text!r} -> {printed!r}"

    @given(_exprs())
    @settings(max_examples=100, deadline=None)
    def test_format_is_stable(self, text):
        """Formatting is idempotent."""
        once = format_expression(parse_expression(text))
        twice = format_expression(parse_expression(once))
        assert once == twice


class TestModuleRoundTrip:
    @pytest.mark.parametrize(
        "source", [RELAXATION_JACOBI_SOURCE, RELAXATION_GAUSS_SEIDEL_SOURCE]
    )
    def test_paper_modules_round_trip(self, source):
        m1 = parse_module(source)
        text = format_module(m1)
        m2 = parse_module(text)
        assert m2.name == m1.name
        assert len(m2.equations) == len(m1.equations)
        for e1, e2 in zip(m1.equations, m2.equations):
            assert expr_equal(e1.rhs, e2.rhs)
        # Fixed point.
        assert format_module(m2) == text

    def test_module_with_records_and_enums(self):
        src = (
            "T: module (p: record x: real; y: real end; c: Color): [d: real];\n"
            "type Color = (red, green, blue);\n"
            "define d = if c = red then p.x else p.y;\nend T;"
        )
        m1 = parse_module(src)
        text = format_module(m1)
        m2 = parse_module(text)
        assert format_module(m2) == text
