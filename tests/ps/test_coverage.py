"""Additional coverage-checker tests (single-assignment domains)."""

import pytest

from repro.errors import CoverageError
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module


def analyze(src):
    return analyze_module(parse_module(src))


class TestDomains:
    def test_adjacent_literal_ranges_disjoint(self):
        analyze(
            "T: module (x: real): [y: real];\n"
            "type L = 1 .. 5; H = 6 .. 10;\n"
            "var A: array [1 .. 10] of real;\n"
            "define A[L] = x; A[H] = x * 2; y = A[10];\nend T;"
        )

    def test_overlapping_literal_ranges_rejected(self):
        with pytest.raises(CoverageError, match="overlap"):
            analyze(
                "T: module (x: real): [y: real];\n"
                "type L = 1 .. 6; H = 5 .. 10;\n"
                "var A: array [1 .. 10] of real;\n"
                "define A[L] = x; A[H] = x * 2; y = A[10];\nend T;"
            )

    def test_distinguished_by_second_dimension(self):
        analyze(
            "T: module (x: real): [y: real];\n"
            "type I = 0 .. 4;\n"
            "var A: array [0 .. 4, 0 .. 1] of real;\n"
            "define A[I, 0] = x; A[I, 1] = x * 2; y = A[4, 1];\nend T;"
        )

    def test_same_cell_two_constants_rejected(self):
        with pytest.raises(CoverageError):
            analyze(
                "T: module (x: real): [y: real];\n"
                "type I = 0 .. 4;\n"
                "var A: array [0 .. 4, 0 .. 4] of real;\n"
                "define A[I, 2] = x; A[I, 1 + 1] = x; y = A[0, 0];\nend T;"
            )

    def test_symbolic_bounds_warn_not_error(self):
        mod = analyze(
            "T: module (n: int; x: real): [y: real];\n"
            "type L = 1 .. n; H = n .. 9;\n"  # touch at n: undecidable
            "var A: array [1 .. 9] of real;\n"
            "define A[L] = x; A[H] = x * 2; y = A[9];\nend T;"
        )
        assert any("cannot prove" in w for w in mod.warnings)

    def test_full_range_twice_rejected(self):
        with pytest.raises(CoverageError, match="overlap"):
            analyze(
                "T: module (x: real): [y: real];\n"
                "type I = 0 .. 4;\n"
                "var A: array [0 .. 4] of real;\n"
                "define A[I] = x; A[I] = x * 2; y = A[0];\nend T;"
            )

    def test_result_scalar_and_array_mix(self):
        analyze(
            "T: module (x: real): [y: real; B: array [0 .. 2] of real];\n"
            "type I = 0 .. 2;\n"
            "define y = x; B[I] = x * I;\nend T;"
        )

    def test_negative_constant_subscripts(self):
        analyze(
            "T: module (x: real): [y: real];\n"
            "type I = 0 .. 2;\n"
            "var A: array [-2 .. 2] of real;\n"
            "define A[-2] = x; A[-1] = x; A[0] = x; A[1] = x; A[2] = x;\n"
            "y = A[2];\nend T;"
        )

    def test_paper_module_no_warnings(self):
        from repro.core.paper import jacobi_analyzed

        assert jacobi_analyzed().warnings == []
