"""Unit tests for the PS parser."""

import pytest

from repro.errors import ParseError
from repro.ps.ast import (
    ArrayTypeExpr,
    BinOp,
    BoolLit,
    Call,
    EnumTypeExpr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    Name,
    NamedTypeExpr,
    RangeTypeExpr,
    RealLit,
    RecordTypeExpr,
    UnOp,
    expr_equal,
)
from repro.ps.parser import parse_expression, parse_module, parse_program


class TestExpressions:
    def test_literals(self):
        assert isinstance(parse_expression("42"), IntLit)
        assert isinstance(parse_expression("3.5"), RealLit)
        assert parse_expression("true") == BoolLit(True)
        assert parse_expression("false") == BoolLit(False)

    def test_precedence_mul_over_add(self):
        e = parse_expression("a + b * c")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_left_associativity(self):
        e = parse_expression("a - b - c")
        assert isinstance(e, BinOp) and e.op == "-"
        assert isinstance(e.left, BinOp) and e.left.op == "-"
        assert isinstance(e.right, Name) and e.right.ident == "c"

    def test_parentheses_override(self):
        e = parse_expression("(a + b) * c")
        assert isinstance(e, BinOp) and e.op == "*"
        assert isinstance(e.left, BinOp) and e.left.op == "+"

    def test_relational_binds_looser_than_arithmetic(self):
        e = parse_expression("I = M + 1")
        assert isinstance(e, BinOp) and e.op == "="
        assert isinstance(e.right, BinOp) and e.right.op == "+"

    def test_and_or_precedence(self):
        e = parse_expression("a = 0 or b = 0 and c = 0")
        # "or" binds loosest: or(a=0, and(b=0, c=0))
        assert e.op == "or"
        assert e.right.op == "and"

    def test_not(self):
        e = parse_expression("not done")
        assert isinstance(e, UnOp) and e.op == "not"

    def test_unary_minus(self):
        e = parse_expression("-x + y")
        assert e.op == "+"
        assert isinstance(e.left, UnOp) and e.left.op == "-"

    def test_indexing(self):
        e = parse_expression("A[K-1, I, J+1]")
        assert isinstance(e, Index)
        assert len(e.subscripts) == 3
        assert isinstance(e.subscripts[0], BinOp) and e.subscripts[0].op == "-"

    def test_nested_indexing(self):
        e = parse_expression("A[1][I, J]")
        assert isinstance(e, Index)
        assert isinstance(e.base, Index)

    def test_field_reference(self):
        e = parse_expression("point.x")
        assert isinstance(e, FieldRef)
        assert e.fieldname == "x"

    def test_chained_field_reference(self):
        e = parse_expression("rec.inner.value")
        assert isinstance(e, FieldRef)
        assert isinstance(e.base, FieldRef)

    def test_call(self):
        e = parse_expression("min(a, b)")
        assert isinstance(e, Call)
        assert e.func == "min"
        assert len(e.args) == 2

    def test_call_no_args(self):
        e = parse_expression("Get()")
        assert isinstance(e, Call) and e.args == []

    def test_if_expression(self):
        e = parse_expression("if x > 0 then x else -x")
        assert isinstance(e, IfExpr)
        assert isinstance(e.orelse, UnOp)

    def test_nested_if(self):
        e = parse_expression("if a then 1 else if b then 2 else 3")
        assert isinstance(e.orelse, IfExpr)

    def test_paper_equation_rhs(self):
        src = (
            "if (I = 0) or (J = 0) or (I = M+1) or (J = M+1) "
            "then A[K-1,I,J] "
            "else (A[K-1,I,J-1] + A[K-1,I-1,J] + A[K-1,I,J+1] + A[K-1,I+1,J]) / 4"
        )
        e = parse_expression(src)
        assert isinstance(e, IfExpr)
        assert isinstance(e.cond, BinOp) and e.cond.op == "or"
        assert isinstance(e.orelse, BinOp) and e.orelse.op == "/"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b extra")

    def test_unbalanced_bracket_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("A[1")


class TestTypeExpressions:
    def test_module_with_array_param(self):
        m = parse_module(
            "T: module (X: array[I,J] of real): [y: real];\n"
            "type I, J = 0 .. 9;\n"
            "define y = X[0, 0];\nend T;"
        )
        te = m.params[0].typeexpr
        assert isinstance(te, ArrayTypeExpr)
        assert [d.name for d in te.dims] == ["I", "J"]
        assert isinstance(te.element, NamedTypeExpr) and te.element.name == "real"

    def test_anonymous_range_dimension(self):
        m = parse_module(
            "T: module (n: int): [y: real];\n"
            "var A: array [1 .. n] of real;\n"
            "define A[1] = 0.0; y = A[n];\nend T;"
        )
        te = m.vardecls[0].typeexpr
        assert isinstance(te.dims[0], RangeTypeExpr)

    def test_record_type(self):
        m = parse_module(
            "T: module (p: record x: real; y: real end): [d: real];\n"
            "define d = p.x + p.y;\nend T;"
        )
        te = m.params[0].typeexpr
        assert isinstance(te, RecordTypeExpr)
        assert te.fields[0][0] == ["x"]

    def test_enum_type(self):
        m = parse_module(
            "T: module (c: int): [y: int];\n"
            "type Color = (red, green, blue);\n"
            "define y = c;\nend T;"
        )
        te = m.typedecls[0].typeexpr
        assert isinstance(te, EnumTypeExpr)
        assert te.members == ["red", "green", "blue"]

    def test_range_with_expression_bounds(self):
        m = parse_module(
            "T: module (M: int): [y: int];\n"
            "type I = 0 .. M+1;\n"
            "define y = M;\nend T;"
        )
        te = m.typedecls[0].typeexpr
        assert isinstance(te, RangeTypeExpr)
        assert isinstance(te.hi, BinOp)


class TestModules:
    def test_figure1_module_parses(self):
        from repro.core.paper import RELAXATION_JACOBI_SOURCE

        m = parse_module(RELAXATION_JACOBI_SOURCE)
        assert m.name == "Relaxation"
        assert [p.name for p in m.params] == ["InitialA", "M", "maxK"]
        assert [r.name for r in m.results] == ["newA"]
        assert len(m.typedecls) == 2
        assert m.typedecls[0].names == ["I", "J"]
        assert len(m.equations) == 3
        assert m.equations[0].label == "eq.1"
        assert m.equations[2].label == "eq.3"

    def test_equation_lhs_subscripts(self):
        from repro.core.paper import RELAXATION_JACOBI_SOURCE

        m = parse_module(RELAXATION_JACOBI_SOURCE)
        eq3 = m.equations[2]
        assert eq3.lhs[0].name == "A"
        subs = eq3.lhs[0].subscripts
        assert [s.ident for s in subs] == ["K", "I", "J"]

    def test_module_name_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_module("T: module (x: int): [y: int];\ndefine y = x;\nend U;")

    def test_multi_target_equation(self):
        m = parse_module(
            "T: module (x: int): [a: int; b: int];\n"
            "define a, b = Pair(x);\nend T;"
        )
        assert len(m.equations[0].lhs) == 2

    def test_program_with_two_modules(self):
        src = (
            "A: module (x: int): [y: int]; define y = x; end A;\n"
            "B: module (x: int): [y: int]; define y = A(x); end B;"
        )
        p = parse_program(src)
        assert [m.name for m in p.modules] == ["A", "B"]

    def test_module_without_var_section(self):
        m = parse_module("T: module (x: int): [y: int];\ndefine y = x + 1;\nend T;")
        assert m.vardecls == []
        assert m.typedecls == []

    def test_missing_define_rejected(self):
        with pytest.raises(ParseError):
            parse_module("T: module (x: int): [y: int];\nend T;")

    def test_empty_params_allowed(self):
        m = parse_module("T: module (): [y: int];\ndefine y = 1;\nend T;")
        assert m.params == []


class TestExprEqual:
    def test_structural_equality_ignores_position(self):
        a = parse_expression("x + y * 2")
        b = parse_expression("x    +    y * 2")
        assert expr_equal(a, b)

    def test_different_expressions_unequal(self):
        assert not expr_equal(parse_expression("x + y"), parse_expression("x - y"))
        assert not expr_equal(parse_expression("A[1]"), parse_expression("A[2]"))
        assert not expr_equal(parse_expression("f(x)"), parse_expression("g(x)"))
