"""Unit tests for the PS lexer."""

import pytest

from repro.errors import LexError
from repro.ps.lexer import tokenize
from repro.ps.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        toks = tokenize("InitialA")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].text == "InitialA"

    def test_identifier_with_underscore_and_digits(self):
        assert texts("new_A2") == ["new_A2"]

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.INT
        assert toks[0].text == "42"

    def test_real_literal(self):
        toks = tokenize("3.25")
        assert toks[0].kind is TokenKind.REAL
        assert toks[0].text == "3.25"

    def test_real_with_exponent(self):
        assert kinds("1e5 2.5E-3 7e+2") == [TokenKind.REAL] * 3

    def test_integer_followed_by_range_is_not_real(self):
        # "1..maxK" must lex as INT DOTDOT IDENT, not a malformed real.
        assert kinds("1..maxK") == [TokenKind.INT, TokenKind.DOTDOT, TokenKind.IDENT]

    def test_keywords_case_insensitive(self):
        assert kinds("MODULE Module module") == [TokenKind.MODULE] * 3

    def test_int_alias_integer(self):
        assert kinds("integer") == [TokenKind.INT_TYPE]

    def test_identifiers_case_sensitive(self):
        toks = tokenize("maxK MAXK")
        assert toks[0].text == "maxK"
        assert toks[1].text == "MAXK"


class TestOperators:
    def test_relational_operators(self):
        assert kinds("= <> < <= > >=") == [
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LT,
            TokenKind.LE,
            TokenKind.GT,
            TokenKind.GE,
        ]

    def test_arithmetic_operators(self):
        assert kinds("+ - * / div mod") == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.DIV,
            TokenKind.MOD,
        ]

    def test_punctuation(self):
        assert kinds(": ; , ( ) [ ] . ..") == [
            TokenKind.COLON,
            TokenKind.SEMI,
            TokenKind.COMMA,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACK,
            TokenKind.RBRACK,
            TokenKind.DOT,
            TokenKind.DOTDOT,
        ]

    def test_boolean_keywords(self):
        assert kinds("and or not true false") == [
            TokenKind.AND,
            TokenKind.OR,
            TokenKind.NOT,
            TokenKind.TRUE,
            TokenKind.FALSE,
        ]


class TestComments:
    def test_simple_comment_skipped(self):
        assert kinds("a (* comment *) b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_nested_comment(self):
        assert kinds("x (* outer (* inner *) still outer *) y") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
        ]

    def test_comment_with_special_chars(self):
        # The paper's Figure 1 contains "(*$m+v+x+t -*)".
        assert kinds("(*$m+v+x+t -*) q") == [TokenKind.IDENT]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a (* never closed")

    def test_comment_across_lines(self):
        toks = tokenize("(* line1\nline2 *)\nname")
        assert toks[0].text == "name"
        assert toks[0].line == 3


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok\n   ?")
        assert exc.value.line == 2
        assert exc.value.column == 4


class TestWholeModuleLexes:
    def test_figure1_source(self):
        from repro.core.paper import RELAXATION_JACOBI_SOURCE

        toks = tokenize(RELAXATION_JACOBI_SOURCE)
        assert toks[-1].kind is TokenKind.EOF
        idents = [t.text for t in toks if t.kind is TokenKind.IDENT]
        assert "Relaxation" in idents
        assert "InitialA" in idents
        assert "maxK" in idents
